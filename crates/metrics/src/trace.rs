//! Span-based pipeline tracing with Chrome trace-event / Perfetto export.
//!
//! The metrics sink answers *why a schedule looks the way it does*; this
//! module answers *where the pipeline's wall time goes*. It records
//! **spans** (named, timed regions with key/value args) and **counters**
//! into a process-global ring shared by every pipeline stage — VM
//! execution and trace-cache loads, `MetaBuilder` preparation chunks,
//! `slice_modes` overlays, and each lane-group walk of the multi-config
//! machine kernel — and serializes them as Chrome trace-event JSON that
//! loads directly in [ui.perfetto.dev](https://ui.perfetto.dev).
//!
//! The design mirrors [`MetricsSink`](crate::MetricsSink)'s zero-cost
//! contract from the other direction:
//!
//! * The [`Tracer`] trait carries a `const ENABLED` flag; [`NullTracer`]
//!   (`ENABLED = false`) monomorphizes every instrumentation block away,
//!   exactly like `NullSink`.
//! * The free functions ([`span`], [`counter`], [`tally`]) guard on one
//!   relaxed atomic load. Tracing defaults to **off**, and call sites sit
//!   at chunk/stage granularity (never per trace event), so the disabled
//!   cost is one predictable branch per ~16 K events.
//! * Recording never changes analysis results: spans observe timestamps,
//!   nothing else. `crates/core/tests/trace_identity.rs` pins the traced
//!   and untraced pipelines bit-identical across all machines.
//!
//! Timestamps are monotonic microseconds from a process-wide
//! [`Instant`] epoch (taken when the recorder is first touched), so spans
//! recorded on different threads order correctly in the viewer. Each
//! thread gets a small integer `tid` on first use, with its name emitted
//! as trace metadata.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::escape_json;

/// A value attached to a span or counter, serialized into the trace
/// event's `args` object.
#[derive(Clone, Debug, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer argument.
    U64(u64),
    /// Floating-point argument.
    F64(f64),
    /// String argument.
    Str(String),
    /// Boolean argument.
    Bool(bool),
}

impl ArgValue {
    /// The value as a JSON fragment.
    fn to_json(&self) -> String {
        match self {
            ArgValue::U64(v) => v.to_string(),
            ArgValue::F64(v) => {
                if v.is_finite() {
                    format!("{v}")
                } else {
                    "null".to_string()
                }
            }
            ArgValue::Str(s) => format!("\"{}\"", escape_json(s)),
            ArgValue::Bool(b) => b.to_string(),
        }
    }
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}
impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

impl fmt::Display for ArgValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgValue::Str(s) => write!(f, "{s}"),
            other => write!(f, "{}", other.to_json()),
        }
    }
}

/// One completed span: a named region with monotonic start and duration
/// in microseconds, the recording thread, and its args.
#[derive(Clone, Debug)]
pub struct SpanEvent {
    /// Span name (the trace event's `name`).
    pub name: String,
    /// Category tag (the trace event's `cat`), e.g. `"vm"`, `"lane"`.
    pub cat: &'static str,
    /// Start, microseconds from the process trace epoch.
    pub ts_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Small integer id of the recording thread.
    pub tid: u64,
    /// Key/value arguments.
    pub args: Vec<(&'static str, ArgValue)>,
}

impl SpanEvent {
    /// The value recorded for `key`, if any.
    pub fn arg(&self, key: &str) -> Option<&ArgValue> {
        self.args.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// One counter sample.
#[derive(Clone, Debug)]
pub struct CounterEvent {
    /// Counter name.
    pub name: String,
    /// Category tag.
    pub cat: &'static str,
    /// Sample time, microseconds from the process trace epoch.
    pub ts_us: u64,
    /// Recording thread.
    pub tid: u64,
    /// Running total at the sample time.
    pub value: u64,
}

/// A record in the trace log.
#[derive(Clone, Debug)]
pub enum TraceRecord {
    /// A completed span.
    Span(SpanEvent),
    /// A counter sample.
    Counter(CounterEvent),
}

/// Everything [`drain`] hands back: the recorded spans/counters plus the
/// thread-id → name table for the metadata events.
#[derive(Clone, Debug, Default)]
pub struct TraceLog {
    /// Spans and counter samples, in recording order per thread.
    pub records: Vec<TraceRecord>,
    /// `(tid, name)` for every thread that recorded anything.
    pub thread_names: Vec<(u64, String)>,
}

impl TraceLog {
    /// Iterator over just the spans.
    pub fn spans(&self) -> impl Iterator<Item = &SpanEvent> {
        self.records.iter().filter_map(|r| match r {
            TraceRecord::Span(s) => Some(s),
            TraceRecord::Counter(_) => None,
        })
    }

    /// Total duration of all spans named `name`, in microseconds.
    pub fn span_total_us(&self, name: &str) -> u64 {
        self.spans().filter(|s| s.name == name).map(|s| s.dur_us).sum()
    }
}

struct Recorder {
    epoch: Instant,
    records: Mutex<Vec<TraceRecord>>,
    thread_names: Mutex<Vec<(u64, String)>>,
    totals: Mutex<BTreeMap<String, u64>>,
}

static RECORDER: OnceLock<Recorder> = OnceLock::new();
static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

fn recorder() -> &'static Recorder {
    RECORDER.get_or_init(|| Recorder {
        epoch: Instant::now(),
        records: Mutex::new(Vec::new()),
        thread_names: Mutex::new(Vec::new()),
        totals: Mutex::new(BTreeMap::new()),
    })
}

thread_local! {
    static TID: Cell<Option<u64>> = const { Cell::new(None) };
}

/// The calling thread's trace id, assigned (and its name registered) on
/// first use.
fn tid() -> u64 {
    TID.with(|cell| match cell.get() {
        Some(id) => id,
        None => {
            let id = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            cell.set(Some(id));
            let name = std::thread::current()
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| format!("thread-{id}"));
            recorder().thread_names.lock().unwrap().push((id, name));
            id
        }
    })
}

/// Microseconds since the process trace epoch.
fn now_us() -> u64 {
    recorder().epoch.elapsed().as_micros() as u64
}

/// Turns span/counter recording on or off process-wide. Off by default;
/// `regen --trace` and `clfp analyze --trace-json` turn it on for the
/// run they export.
pub fn set_tracing(on: bool) {
    if on {
        // Pin the epoch before the first span so timestamps start near 0.
        let _ = recorder();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether span recording is currently on (one relaxed atomic load —
/// this is the entire disabled-path cost of a free-function call site).
#[inline]
pub fn tracing_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Takes every recorded span and counter sample out of the global log,
/// leaving the running counter totals (see [`counter_total`]) intact.
pub fn drain() -> TraceLog {
    let rec = recorder();
    TraceLog {
        records: std::mem::take(&mut *rec.records.lock().unwrap()),
        thread_names: rec.thread_names.lock().unwrap().clone(),
    }
}

/// An RAII span: created by [`span`] (or a [`Tracer`]), records one
/// complete trace event when dropped. Inert (no timestamps taken, no
/// allocation beyond the `None`) when tracing is off.
#[must_use = "a span measures the scope it is alive for"]
pub struct SpanGuard(Option<SpanStart>);

struct SpanStart {
    name: String,
    cat: &'static str,
    args: Vec<(&'static str, ArgValue)>,
    start_us: u64,
}

impl SpanGuard {
    /// An inert guard that records nothing.
    pub fn inert() -> SpanGuard {
        SpanGuard(None)
    }

    /// Whether this guard will record an event on drop.
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// Attaches an argument (ignored on an inert guard).
    pub fn arg(mut self, key: &'static str, value: impl Into<ArgValue>) -> SpanGuard {
        if let Some(start) = &mut self.0 {
            start.args.push((key, value.into()));
        }
        self
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.0.take() {
            let end = now_us();
            let event = SpanEvent {
                name: start.name,
                cat: start.cat,
                ts_us: start.start_us,
                dur_us: end.saturating_sub(start.start_us),
                tid: tid(),
                args: start.args,
            };
            recorder()
                .records
                .lock()
                .unwrap()
                .push(TraceRecord::Span(event));
        }
    }
}

/// Opens a span covering the guard's lifetime. With tracing off this
/// returns an inert guard after one relaxed atomic load.
pub fn span(name: impl Into<String>, cat: &'static str) -> SpanGuard {
    if !tracing_enabled() {
        return SpanGuard::inert();
    }
    SpanGuard(Some(SpanStart {
        name: name.into(),
        cat,
        args: Vec::new(),
        start_us: now_us(),
    }))
}

/// Microseconds since the process trace epoch — for callers that
/// synthesize spans with [`record_span`] instead of using a guard.
pub fn now_monotonic_us() -> u64 {
    now_us()
}

/// Records a pre-measured span when tracing is on. For aggregated
/// regions whose wall time accumulates across many disjoint slices —
/// e.g. a lane group's whole walk, fed chunk by chunk — where a single
/// RAII guard would also count the time other groups spent interleaved
/// on the same thread.
pub fn record_span(
    name: impl Into<String>,
    cat: &'static str,
    ts_us: u64,
    dur_us: u64,
    args: Vec<(&'static str, ArgValue)>,
) {
    if !tracing_enabled() {
        return;
    }
    let event = SpanEvent {
        name: name.into(),
        cat,
        ts_us,
        dur_us,
        tid: tid(),
        args,
    };
    recorder()
        .records
        .lock()
        .unwrap()
        .push(TraceRecord::Span(event));
}

/// Adds `delta` to the named running counter and records a sample —
/// only when tracing is on (hot-path safe; cf. [`tally`]).
pub fn counter(name: &str, cat: &'static str, delta: u64) {
    if tracing_enabled() {
        tally_in(name, cat, delta, true);
    }
}

/// Adds `delta` to the named running counter **unconditionally**, and
/// additionally records a counter sample when tracing is on. For rare
/// events whose totals must be queryable without a trace session — the
/// trace-cache hit/miss counters behind `clfp cache list` use this.
pub fn tally(name: &str, cat: &'static str, delta: u64) {
    tally_in(name, cat, delta, tracing_enabled());
}

fn tally_in(name: &str, cat: &'static str, delta: u64, record: bool) {
    let rec = recorder();
    let total = {
        let mut totals = rec.totals.lock().unwrap();
        let slot = totals.entry(name.to_string()).or_insert(0);
        *slot += delta;
        *slot
    };
    if record {
        let event = CounterEvent {
            name: name.to_string(),
            cat,
            ts_us: now_us(),
            tid: tid(),
            value: total,
        };
        rec.records.lock().unwrap().push(TraceRecord::Counter(event));
    }
}

/// The running total of the named counter (both [`counter`] and
/// [`tally`] feed it; [`drain`] leaves it intact).
pub fn counter_total(name: &str) -> u64 {
    recorder()
        .totals
        .lock()
        .unwrap()
        .get(name)
        .copied()
        .unwrap_or(0)
}

/// Every counter's running total, sorted by name.
pub fn counter_totals() -> Vec<(String, u64)> {
    recorder()
        .totals
        .lock()
        .unwrap()
        .iter()
        .map(|(k, v)| (k.clone(), *v))
        .collect()
}

/// Zeroes every running counter total (test isolation).
pub fn reset_counters() {
    recorder().totals.lock().unwrap().clear();
}

/// Instrumentation hook the pipeline can be generic over, mirroring
/// [`MetricsSink`](crate::MetricsSink): `const ENABLED` lets the
/// [`NullTracer`] path compile instrumentation blocks out entirely
/// (`if T::ENABLED { ... }` is statically eliminated).
pub trait Tracer {
    /// Whether this tracer records anything at all.
    const ENABLED: bool;

    /// Opens a span covering the returned guard's lifetime.
    fn span(&self, name: &str, cat: &'static str) -> SpanGuard;

    /// Adds `delta` to a named counter.
    fn counter(&self, name: &str, cat: &'static str, delta: u64);
}

/// The default tracer: records nothing, costs nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullTracer;

impl Tracer for NullTracer {
    const ENABLED: bool = false;

    #[inline]
    fn span(&self, _name: &str, _cat: &'static str) -> SpanGuard {
        SpanGuard::inert()
    }

    #[inline]
    fn counter(&self, _name: &str, _cat: &'static str, _delta: u64) {}
}

/// The recording tracer: delegates to the process-global log (still
/// gated on [`set_tracing`], so constructing one does not by itself turn
/// recording on).
#[derive(Clone, Copy, Debug, Default)]
pub struct SpanTracer;

impl Tracer for SpanTracer {
    const ENABLED: bool = true;

    fn span(&self, name: &str, cat: &'static str) -> SpanGuard {
        span(name.to_string(), cat)
    }

    fn counter(&self, name: &str, cat: &'static str, delta: u64) {
        counter(name, cat, delta);
    }
}

/// Aggregate statistics for one span name, from [`aggregate_spans`].
#[derive(Clone, Debug, PartialEq)]
pub struct SpanStats {
    /// Span name.
    pub name: String,
    /// Number of recorded spans with this name.
    pub count: u64,
    /// Sum of their durations, microseconds.
    pub total_us: u64,
}

/// Groups a log's spans by name, sorted by total duration descending
/// (ties broken by name so output is deterministic).
pub fn aggregate_spans(log: &TraceLog) -> Vec<SpanStats> {
    let mut by_name: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for span in log.spans() {
        let slot = by_name.entry(&span.name).or_insert((0, 0));
        slot.0 += 1;
        slot.1 += span.dur_us;
    }
    let mut stats: Vec<SpanStats> = by_name
        .into_iter()
        .map(|(name, (count, total_us))| SpanStats {
            name: name.to_string(),
            count,
            total_us,
        })
        .collect();
    stats.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.name.cmp(&b.name)));
    stats
}

/// Serializes a drained log as Chrome trace-event JSON — the
/// `{"traceEvents": [...]}` object format, loadable as-is in
/// `chrome://tracing` and [ui.perfetto.dev](https://ui.perfetto.dev).
/// Spans become complete (`"ph": "X"`) events, counter samples become
/// `"ph": "C"` events, and thread names are emitted as `"ph": "M"`
/// metadata.
pub fn chrome_trace_json(log: &TraceLog) -> String {
    let mut out = String::from("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
    let mut first = true;
    let mut push = |line: String, out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
        out.push_str(&line);
    };
    for (tid, name) in &log.thread_names {
        push(
            format!(
                "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": {tid}, \
                 \"args\": {{\"name\": \"{}\"}}}}",
                escape_json(name)
            ),
            &mut out,
        );
    }
    for record in &log.records {
        match record {
            TraceRecord::Span(s) => {
                let mut args = String::new();
                for (i, (key, value)) in s.args.iter().enumerate() {
                    if i > 0 {
                        args.push_str(", ");
                    }
                    args.push_str(&format!("\"{}\": {}", escape_json(key), value.to_json()));
                }
                push(
                    format!(
                        "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"ts\": {}, \
                         \"dur\": {}, \"pid\": 0, \"tid\": {}, \"args\": {{{args}}}}}",
                        escape_json(&s.name),
                        s.cat,
                        s.ts_us,
                        s.dur_us,
                        s.tid
                    ),
                    &mut out,
                );
            }
            TraceRecord::Counter(c) => {
                push(
                    format!(
                        "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"C\", \"ts\": {}, \
                         \"pid\": 0, \"tid\": {}, \"args\": {{\"value\": {}}}}}",
                        escape_json(&c.name),
                        c.cat,
                        c.ts_us,
                        c.tid,
                        c.value
                    ),
                    &mut out,
                );
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global log is process-wide, so the tests below run under one
    // lock to keep drains from interleaving (cargo runs tests in
    // parallel threads within a binary).
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_tracing_records_nothing() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_tracing(false);
        drain();
        {
            let _span = span("quiet", "test").arg("k", 1u64);
            counter("quiet.counter", "test", 5);
        }
        let log = drain();
        assert!(log.records.is_empty(), "disabled tracer recorded events");
        assert_eq!(counter_total("quiet.counter"), 0, "counter() must gate");
    }

    #[test]
    fn spans_and_counters_round_trip() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_tracing(true);
        drain();
        reset_counters();
        {
            let _outer = span("outer", "test").arg("workload", "qsort").arg("n", 3u64);
            let _inner = span("inner", "test");
            counter("events", "test", 7);
            counter("events", "test", 5);
        }
        set_tracing(false);
        let log = drain();
        let spans: Vec<_> = log.spans().collect();
        assert_eq!(spans.len(), 2);
        // Guards drop innermost-first.
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[1].name, "outer");
        assert_eq!(
            spans[1].arg("workload"),
            Some(&ArgValue::Str("qsort".to_string()))
        );
        assert_eq!(spans[1].arg("n"), Some(&ArgValue::U64(3)));
        assert!(spans[1].ts_us <= spans[0].ts_us, "outer starts first");
        assert_eq!(counter_total("events"), 12);
        let samples: Vec<_> = log
            .records
            .iter()
            .filter_map(|r| match r {
                TraceRecord::Counter(c) => Some(c.value),
                TraceRecord::Span(_) => None,
            })
            .collect();
        assert_eq!(samples, vec![7, 12], "samples carry running totals");
        assert!(!log.thread_names.is_empty());
        reset_counters();
    }

    #[test]
    fn tally_accumulates_without_tracing() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_tracing(false);
        drain();
        reset_counters();
        tally("cache.hit", "cache", 2);
        tally("cache.hit", "cache", 1);
        tally("cache.miss", "cache", 1);
        assert_eq!(counter_total("cache.hit"), 3);
        assert_eq!(counter_total("cache.miss"), 1);
        assert!(drain().records.is_empty(), "tally must not record samples");
        let totals = counter_totals();
        assert_eq!(
            totals,
            vec![("cache.hit".to_string(), 3), ("cache.miss".to_string(), 1)]
        );
        reset_counters();
    }

    #[test]
    fn null_tracer_is_inert_and_span_tracer_records() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_tracing(true);
        drain();
        const _: () = assert!(!NullTracer::ENABLED);
        const _: () = assert!(SpanTracer::ENABLED);
        {
            let g = NullTracer.span("nothing", "test");
            assert!(!g.is_active());
            let g = SpanTracer.span("something", "test");
            assert!(g.is_active());
        }
        set_tracing(false);
        let log = drain();
        assert_eq!(log.spans().count(), 1);
        assert_eq!(log.spans().next().unwrap().name, "something");
    }

    #[test]
    fn chrome_json_is_well_formed() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_tracing(true);
        drain();
        {
            let _s = span("stage \"x\"", "suite").arg("ok", true).arg("f", 1.5);
            counter("n", "suite", 9);
        }
        set_tracing(false);
        let log = drain();
        let json = chrome_trace_json(&log);
        assert!(json.starts_with("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n"));
        assert!(json.trim_end().ends_with("]}"));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"ph\": \"C\""));
        assert!(json.contains("\"ph\": \"M\""));
        assert!(json.contains("stage \\\"x\\\""));
        assert!(json.contains("\"ok\": true"));
        assert!(json.contains("\"f\": 1.5"));
        assert!(json.contains("\"value\": 9"));
        // Balanced braces/brackets outside strings — cheap structural
        // sanity without a JSON parser.
        let mut depth = 0i64;
        let mut in_str = false;
        let mut esc = false;
        for c in json.chars() {
            if esc {
                esc = false;
                continue;
            }
            match c {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
        }
        assert_eq!(depth, 0, "unbalanced JSON structure");
        assert!(!in_str, "unterminated string");
    }

    #[test]
    fn aggregate_spans_groups_and_sorts() {
        let log = TraceLog {
            records: vec![
                TraceRecord::Span(SpanEvent {
                    name: "a".into(),
                    cat: "t",
                    ts_us: 0,
                    dur_us: 5,
                    tid: 0,
                    args: vec![],
                }),
                TraceRecord::Span(SpanEvent {
                    name: "b".into(),
                    cat: "t",
                    ts_us: 1,
                    dur_us: 20,
                    tid: 0,
                    args: vec![],
                }),
                TraceRecord::Span(SpanEvent {
                    name: "a".into(),
                    cat: "t",
                    ts_us: 9,
                    dur_us: 7,
                    tid: 1,
                    args: vec![],
                }),
            ],
            thread_names: vec![],
        };
        let stats = aggregate_spans(&log);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].name, "b");
        assert_eq!(stats[0].total_us, 20);
        assert_eq!(stats[1].name, "a");
        assert_eq!(stats[1].count, 2);
        assert_eq!(stats[1].total_us, 12);
        assert_eq!(log.span_total_us("a"), 12);
    }
}
