//! Robustness: the assembler must never panic — any input yields either a
//! program or a structured error with a line number.

// Requires the external `proptest` crate: gated off by default so the
// workspace builds and tests fully offline. Enable with
// `--features external-tests` after restoring the proptest dev-dependency.
#![cfg(feature = "external-tests")]

use clfp_isa::assemble;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    /// Arbitrary junk never panics.
    #[test]
    fn arbitrary_text_never_panics(source in "\\PC{0,200}") {
        let _ = assemble(&source);
    }

    /// Almost-assembly (mnemonic-shaped tokens, registers, numbers,
    /// labels, directives in random order) never panics, and errors carry
    /// plausible line numbers.
    #[test]
    fn assembly_shaped_text_never_panics(
        tokens in prop::collection::vec(
            prop::sample::select(vec![
                "add", "addi", "lw", "sw", "beq", "j", "jr", "call", "ret",
                "halt", "li", "mv", "cmovn", ".text", ".data", ".word",
                ".space", "r0", "r31", "r99", "sp", "label:", "label",
                "0x10", "-5", "7,", "(", ")", "(sp)", "4(sp)", ",", "\n",
                "#comment\n", ";c\n",
            ]),
            0..60,
        )
    ) {
        let source = tokens.join(" ");
        match assemble(&source) {
            Ok(program) => {
                // Anything that assembles must also validate.
                prop_assert_eq!(program.validate(), Ok(()));
            }
            Err(err) => {
                let lines = source.lines().count();
                prop_assert!(err.line() <= lines + 1, "line {} of {}", err.line(), lines);
            }
        }
    }
}
