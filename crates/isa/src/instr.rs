use std::fmt;

use crate::Reg;

/// Arithmetic/logic operations shared by the register-register and
/// register-immediate instruction forms.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum AluOp {
    /// Two's-complement addition (wrapping).
    Add,
    /// Two's-complement subtraction (wrapping).
    Sub,
    /// Two's-complement multiplication (wrapping, low 32 bits).
    Mul,
    /// Signed division; division by zero yields 0 (the trap is ignored,
    /// matching the study's idealized machine).
    Div,
    /// Signed remainder; remainder by zero yields 0.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive-or.
    Xor,
    /// Logical shift left by `rt & 31`.
    Sll,
    /// Logical shift right by `rt & 31`.
    Srl,
    /// Arithmetic shift right by `rt & 31`.
    Sra,
    /// Set to 1 if `rs < rt` (signed), else 0.
    Slt,
    /// Set to 1 if `rs < rt` (unsigned), else 0.
    Sltu,
    /// Set to 1 if `rs == rt`, else 0.
    Seq,
    /// Set to 1 if `rs != rt`, else 0.
    Sne,
    /// Set to 1 if `rs <= rt` (signed), else 0.
    Sle,
}

impl AluOp {
    /// All operations, in encoding order.
    pub const ALL: [AluOp; 16] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Rem,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Slt,
        AluOp::Sltu,
        AluOp::Seq,
        AluOp::Sne,
        AluOp::Sle,
    ];

    /// Mnemonic for the register-register form.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Seq => "seq",
            AluOp::Sne => "sne",
            AluOp::Sle => "sle",
        }
    }

    /// Evaluates the operation on two word values.
    pub fn eval(self, a: i32, b: i32) -> i32 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            AluOp::Rem => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => ((a as u32) << (b as u32 & 31)) as i32,
            AluOp::Srl => ((a as u32) >> (b as u32 & 31)) as i32,
            AluOp::Sra => a >> (b as u32 & 31),
            AluOp::Slt => (a < b) as i32,
            AluOp::Sltu => ((a as u32) < (b as u32)) as i32,
            AluOp::Seq => (a == b) as i32,
            AluOp::Sne => (a != b) as i32,
            AluOp::Sle => (a <= b) as i32,
        }
    }
}

/// Condition tested by a conditional branch, comparing two registers with a
/// signed relation.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum BranchCond {
    /// Branch if `rs == rt`.
    Eq,
    /// Branch if `rs != rt`.
    Ne,
    /// Branch if `rs < rt` (signed).
    Lt,
    /// Branch if `rs >= rt` (signed).
    Ge,
    /// Branch if `rs <= rt` (signed).
    Le,
    /// Branch if `rs > rt` (signed).
    Gt,
}

impl BranchCond {
    /// All conditions, in encoding order.
    pub const ALL: [BranchCond; 6] = [
        BranchCond::Eq,
        BranchCond::Ne,
        BranchCond::Lt,
        BranchCond::Ge,
        BranchCond::Le,
        BranchCond::Gt,
    ];

    /// Branch mnemonic (`beq`, `bne`, ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Ge => "bge",
            BranchCond::Le => "ble",
            BranchCond::Gt => "bgt",
        }
    }

    /// Evaluates the condition.
    pub fn eval(self, a: i32, b: i32) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => a < b,
            BranchCond::Ge => a >= b,
            BranchCond::Le => a <= b,
            BranchCond::Gt => a > b,
        }
    }

    /// The condition with both outcomes swapped (`Eq` ↔ `Ne`, ...).
    pub fn negate(self) -> BranchCond {
        match self {
            BranchCond::Eq => BranchCond::Ne,
            BranchCond::Ne => BranchCond::Eq,
            BranchCond::Lt => BranchCond::Ge,
            BranchCond::Ge => BranchCond::Lt,
            BranchCond::Le => BranchCond::Gt,
            BranchCond::Gt => BranchCond::Le,
        }
    }
}

/// One machine instruction.
///
/// Branch and jump targets are indices into the program's text segment
/// (instruction numbers, not byte addresses). Load/store addresses are byte
/// addresses and must be word-aligned.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Instr {
    /// `op rd, rs, rt` — register-register ALU operation.
    Alu { op: AluOp, rd: Reg, rs: Reg, rt: Reg },
    /// `opi rd, rs, imm` — register-immediate ALU operation.
    AluI { op: AluOp, rd: Reg, rs: Reg, imm: i32 },
    /// `li rd, imm` — load a 32-bit immediate.
    Li { rd: Reg, imm: i32 },
    /// `lw rd, offset(base)` — load word from `base + offset`.
    Lw { rd: Reg, base: Reg, offset: i32 },
    /// `sw rs, offset(base)` — store word to `base + offset`.
    Sw { rs: Reg, base: Reg, offset: i32 },
    /// `cmovn rd, rs, rt` — guarded move: `rd = rs` if `rt != 0`, else
    /// `rd` keeps its value. A *guarded instruction* in the sense of the
    /// paper's Section 6: the guard replaces a control dependence with a
    /// data dependence (note the instruction reads `rd`).
    CMovN { rd: Reg, rs: Reg, rt: Reg },
    /// `cmovz rd, rs, rt` — guarded move: `rd = rs` if `rt == 0`.
    CMovZ { rd: Reg, rs: Reg, rt: Reg },
    /// `b<cond> rs, rt, target` — conditional branch.
    Branch {
        cond: BranchCond,
        rs: Reg,
        rt: Reg,
        target: u32,
    },
    /// `j target` — direct unconditional jump.
    Jump { target: u32 },
    /// `jr rs` — computed jump (e.g. switch tables).
    JumpR { rs: Reg },
    /// `call target` — direct call; writes the return address to `ra`.
    Call { target: u32 },
    /// `callr rs` — indirect call through `rs`; writes `ra`.
    CallR { rs: Reg },
    /// `ret` — return through `ra`.
    Ret,
    /// `halt` — stop the machine.
    Halt,
    /// `nop` — no operation.
    Nop,
}

impl Instr {
    /// The register this instruction writes, if any.
    ///
    /// `call`/`callr` report `ra`; `r0` destinations are reported as `None`
    /// since writes to the zero register have no effect.
    pub fn def(self) -> Option<Reg> {
        let reg = match self {
            Instr::Alu { rd, .. } | Instr::AluI { rd, .. } | Instr::Li { rd, .. } => rd,
            Instr::CMovN { rd, .. } | Instr::CMovZ { rd, .. } => rd,
            Instr::Lw { rd, .. } => rd,
            Instr::Call { .. } | Instr::CallR { .. } => Reg::RA,
            _ => return None,
        };
        if reg.is_zero() {
            None
        } else {
            Some(reg)
        }
    }

    /// The registers this instruction reads, as up to three entries.
    ///
    /// Reads of `r0` are omitted: the zero register never carries a
    /// dependence.
    pub fn uses(self) -> UseIter {
        let mut regs = [None; 3];
        match self {
            Instr::Alu { rs, rt, .. } => {
                regs[0] = Some(rs);
                regs[1] = Some(rt);
            }
            Instr::AluI { rs, .. } => regs[0] = Some(rs),
            // Guarded moves read their destination: the old value survives
            // when the guard fails.
            Instr::CMovN { rd, rs, rt } | Instr::CMovZ { rd, rs, rt } => {
                regs[0] = Some(rs);
                regs[1] = Some(rt);
                regs[2] = Some(rd);
            }
            Instr::Li { .. } => {}
            Instr::Lw { base, .. } => regs[0] = Some(base),
            Instr::Sw { rs, base, .. } => {
                regs[0] = Some(rs);
                regs[1] = Some(base);
            }
            Instr::Branch { rs, rt, .. } => {
                regs[0] = Some(rs);
                regs[1] = Some(rt);
            }
            Instr::JumpR { rs } | Instr::CallR { rs } => regs[0] = Some(rs),
            Instr::Ret => regs[0] = Some(Reg::RA),
            Instr::Jump { .. } | Instr::Call { .. } | Instr::Halt | Instr::Nop => {}
        }
        // Drop zero-register reads; they never create dependences.
        for slot in &mut regs {
            if slot.is_some_and(Reg::is_zero) {
                *slot = None;
            }
        }
        UseIter { regs, next: 0 }
    }

    /// Whether this is a conditional branch.
    pub fn is_cond_branch(self) -> bool {
        matches!(self, Instr::Branch { .. })
    }

    /// Whether this is a computed (register-indirect) jump, excluding
    /// returns and calls.
    pub fn is_computed_jump(self) -> bool {
        matches!(self, Instr::JumpR { .. })
    }

    /// Whether this instruction ends a basic block: any control transfer or
    /// halt.
    pub fn ends_block(self) -> bool {
        matches!(
            self,
            Instr::Branch { .. }
                | Instr::Jump { .. }
                | Instr::JumpR { .. }
                | Instr::Call { .. }
                | Instr::CallR { .. }
                | Instr::Ret
                | Instr::Halt
        )
    }

    /// Whether this instruction is stack-pointer arithmetic (frame
    /// allocation/deallocation), which the study's "perfect inlining"
    /// removes from traces.
    pub fn is_sp_manip(self) -> bool {
        match self {
            Instr::AluI {
                op: AluOp::Add | AluOp::Sub,
                rd,
                rs,
                ..
            } => rd == Reg::SP && rs == Reg::SP,
            Instr::Alu {
                op: AluOp::Add | AluOp::Sub,
                rd,
                rs,
                ..
            } => rd == Reg::SP && rs == Reg::SP,
            _ => false,
        }
    }

    /// Whether this instruction is a call or return, removed from traces by
    /// the study's "perfect inlining".
    pub fn is_call_or_ret(self) -> bool {
        matches!(
            self,
            Instr::Call { .. } | Instr::CallR { .. } | Instr::Ret
        )
    }
}

/// Iterator over the registers an instruction reads.
///
/// Produced by [`Instr::uses`].
#[derive(Clone, Debug)]
pub struct UseIter {
    regs: [Option<Reg>; 3],
    next: usize,
}

impl Iterator for UseIter {
    type Item = Reg;

    fn next(&mut self) -> Option<Reg> {
        while self.next < self.regs.len() {
            let slot = self.regs[self.next];
            self.next += 1;
            if let Some(reg) = slot {
                return Some(reg);
            }
        }
        None
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Alu { op, rd, rs, rt } => write!(f, "{} {rd}, {rs}, {rt}", op.mnemonic()),
            Instr::AluI { op, rd, rs, imm } => {
                write!(f, "{}i {rd}, {rs}, {imm}", op.mnemonic())
            }
            Instr::Li { rd, imm } => write!(f, "li {rd}, {imm}"),
            Instr::CMovN { rd, rs, rt } => write!(f, "cmovn {rd}, {rs}, {rt}"),
            Instr::CMovZ { rd, rs, rt } => write!(f, "cmovz {rd}, {rs}, {rt}"),
            Instr::Lw { rd, base, offset } => write!(f, "lw {rd}, {offset}({base})"),
            Instr::Sw { rs, base, offset } => write!(f, "sw {rs}, {offset}({base})"),
            Instr::Branch {
                cond,
                rs,
                rt,
                target,
            } => write!(f, "{} {rs}, {rt}, @{target}", cond.mnemonic()),
            Instr::Jump { target } => write!(f, "j @{target}"),
            Instr::JumpR { rs } => write!(f, "jr {rs}"),
            Instr::Call { target } => write!(f, "call @{target}"),
            Instr::CallR { rs } => write!(f, "callr {rs}"),
            Instr::Ret => f.write_str("ret"),
            Instr::Halt => f.write_str("halt"),
            Instr::Nop => f.write_str("nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn def_reports_destination() {
        let instr = Instr::Alu {
            op: AluOp::Add,
            rd: Reg::new(8),
            rs: Reg::new(9),
            rt: Reg::new(10),
        };
        assert_eq!(instr.def(), Some(Reg::new(8)));
    }

    #[test]
    fn def_hides_zero_register_writes() {
        let instr = Instr::AluI {
            op: AluOp::Add,
            rd: Reg::ZERO,
            rs: Reg::new(9),
            imm: 1,
        };
        assert_eq!(instr.def(), None);
    }

    #[test]
    fn call_defines_ra() {
        assert_eq!(Instr::Call { target: 0 }.def(), Some(Reg::RA));
        assert_eq!(Instr::CallR { rs: Reg::new(8) }.def(), Some(Reg::RA));
    }

    #[test]
    fn uses_skip_zero_register() {
        let instr = Instr::Branch {
            cond: BranchCond::Eq,
            rs: Reg::new(8),
            rt: Reg::ZERO,
            target: 0,
        };
        let uses: Vec<Reg> = instr.uses().collect();
        assert_eq!(uses, vec![Reg::new(8)]);
    }

    #[test]
    fn ret_uses_ra() {
        let uses: Vec<Reg> = Instr::Ret.uses().collect();
        assert_eq!(uses, vec![Reg::RA]);
    }

    #[test]
    fn cmov_reads_its_destination() {
        let instr = Instr::CMovN {
            rd: Reg::new(8),
            rs: Reg::new(9),
            rt: Reg::new(10),
        };
        assert_eq!(instr.def(), Some(Reg::new(8)));
        let uses: Vec<Reg> = instr.uses().collect();
        assert_eq!(uses, vec![Reg::new(9), Reg::new(10), Reg::new(8)]);
        assert!(!instr.ends_block());
        assert!(!instr.is_cond_branch());
        assert_eq!(instr.to_string(), "cmovn r8, r9, r10");
    }

    #[test]
    fn sp_manip_detection() {
        let push = Instr::AluI {
            op: AluOp::Add,
            rd: Reg::SP,
            rs: Reg::SP,
            imm: -16,
        };
        assert!(push.is_sp_manip());
        let normal = Instr::AluI {
            op: AluOp::Add,
            rd: Reg::new(8),
            rs: Reg::SP,
            imm: 4,
        };
        assert!(!normal.is_sp_manip());
    }

    #[test]
    fn alu_eval_division_by_zero_is_zero() {
        assert_eq!(AluOp::Div.eval(5, 0), 0);
        assert_eq!(AluOp::Rem.eval(5, 0), 0);
    }

    #[test]
    fn alu_eval_basics() {
        assert_eq!(AluOp::Add.eval(2, 3), 5);
        assert_eq!(AluOp::Sub.eval(2, 3), -1);
        assert_eq!(AluOp::Mul.eval(-4, 3), -12);
        assert_eq!(AluOp::Sll.eval(1, 4), 16);
        assert_eq!(AluOp::Sra.eval(-16, 2), -4);
        assert_eq!(AluOp::Srl.eval(-1, 28), 15);
        assert_eq!(AluOp::Slt.eval(-1, 0), 1);
        assert_eq!(AluOp::Sltu.eval(-1, 0), 0);
    }

    #[test]
    fn alu_eval_overflow_wraps() {
        assert_eq!(AluOp::Add.eval(i32::MAX, 1), i32::MIN);
        assert_eq!(AluOp::Div.eval(i32::MIN, -1), i32::MIN);
    }

    #[test]
    fn branch_cond_negate_flips_outcome() {
        for cond in BranchCond::ALL {
            for (a, b) in [(0, 0), (1, 2), (2, 1), (-5, 3)] {
                assert_eq!(cond.eval(a, b), !cond.negate().eval(a, b));
            }
        }
    }

    #[test]
    fn ends_block_classification() {
        assert!(Instr::Ret.ends_block());
        assert!(Instr::Halt.ends_block());
        assert!(Instr::Jump { target: 3 }.ends_block());
        assert!(!Instr::Nop.ends_block());
        assert!(!Instr::Li {
            rd: Reg::new(8),
            imm: 0
        }
        .ends_block());
    }

    #[test]
    fn display_formats() {
        let instr = Instr::Lw {
            rd: Reg::new(8),
            base: Reg::SP,
            offset: 12,
        };
        assert_eq!(instr.to_string(), "lw r8, 12(sp)");
    }
}
