//! # clfp-isa
//!
//! The instruction set architecture used throughout the `clfp` limit study —
//! a reproduction of Lam & Wilson, *Limits of Control Flow on Parallelism*
//! (ISCA 1992).
//!
//! The original study traced MIPS R3000 binaries with `pixie`. This crate
//! provides the equivalent substrate: a 32-register, word-oriented RISC
//! instruction set that preserves every property the study's analyses rely
//! on:
//!
//! * explicit conditional branches, direct jumps, computed jumps, and
//!   call/return instructions (so control-dependence analysis and branch
//!   prediction see the same instruction classes `pixie` did);
//! * stack-pointer arithmetic that is recognizable from the object code
//!   (the paper's "perfect inlining" deletes it from traces);
//! * loop index updates expressed as ordinary register adds (the paper's
//!   "perfect unrolling" finds them with data-flow analysis).
//!
//! The crate contains the instruction definitions ([`Instr`], [`AluOp`],
//! [`BranchCond`], [`Reg`]), a binary encoding ([`encode`]/[`decode`]), the
//! linked program container ([`Program`]), and a two-pass assembler
//! ([`assemble`]).
//!
//! ## Example
//!
//! ```
//! use clfp_isa::{assemble, Instr};
//!
//! let program = assemble(
//!     r#"
//!     .data
//! counter: .word 0
//!     .text
//! main:
//!     li   r8, 10
//!     li   r9, 0
//! loop:
//!     add  r9, r9, r8
//!     addi r8, r8, -1
//!     bgt  r8, r0, loop
//!     halt
//! "#,
//! )?;
//! assert_eq!(program.text.len(), 6);
//! assert!(matches!(program.text[0], Instr::Li { .. }));
//! # Ok::<(), clfp_isa::AsmError>(())
//! ```

mod asm;
mod encode;
mod error;
mod instr;
mod program;
mod reg;

pub use asm::assemble;
pub use encode::{decode, encode, DecodeError};
pub use error::AsmError;
pub use instr::{AluOp, BranchCond, Instr};
pub use program::{DataItem, Program, SymbolTable};
pub use reg::Reg;

/// Byte address where the data segment begins in the simulated address space.
pub const DATA_BASE: u32 = 0x1000;

/// Size of a machine word in bytes. All memory accesses are word-sized and
/// word-aligned.
pub const WORD: u32 = 4;
