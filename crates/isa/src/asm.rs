//! A two-pass assembler for the clfp instruction set.
//!
//! The syntax is deliberately close to MIPS assembly:
//!
//! ```text
//! # comment           ; also a comment
//!         .data
//! table:  .word 1, 2, 3
//! buf:    .space 64            # bytes, word-aligned
//!         .text
//! main:   li   r8, 0
//!         li   r9, table       # data symbols become addresses
//! loop:   lw   r10, 0(r9)
//!         add  r8, r8, r10
//!         addi r9, r9, 4
//!         blt  r9, r11, loop
//!         halt
//! ```
//!
//! Supported pseudo-instructions: `mv rd, rs` (expands to `addi rd, rs, 0`).
//! Execution starts at the `__start` label if defined, else at `main`, else
//! at instruction 0.

use std::collections::HashMap;

use crate::{AluOp, AsmError, BranchCond, DataItem, Instr, Program, Reg, DATA_BASE, WORD};

/// Assembles a program from source text.
///
/// # Errors
///
/// Returns [`AsmError`] with the offending line on any syntax error,
/// duplicate label, or undefined label reference.
///
/// # Example
///
/// ```
/// let program = clfp_isa::assemble(".text\nmain: nop\n halt")?;
/// assert_eq!(program.text.len(), 2);
/// # Ok::<(), clfp_isa::AsmError>(())
/// ```
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    Assembler::new().assemble(source)
}

#[derive(Copy, Clone, PartialEq, Eq)]
enum Section {
    Text,
    Data,
}

/// An operand whose value may be a symbol, resolved after pass one.
#[derive(Clone)]
enum Pending {
    /// Instruction complete as written.
    Done(Instr),
    /// Branch with a label target.
    Branch {
        cond: BranchCond,
        rs: Reg,
        rt: Reg,
        label: String,
        line: usize,
    },
    /// Jump with a label target.
    Jump { label: String, line: usize },
    /// Call with a label target.
    Call { label: String, line: usize },
    /// `li` of a symbol (code or data address).
    LiSymbol { rd: Reg, label: String, line: usize },
}

struct Assembler {
    section: Section,
    pending: Vec<Pending>,
    data: Vec<i32>,
    symbols: HashMap<String, SymbolValue>,
    program_symbols: crate::SymbolTable,
}

#[derive(Copy, Clone)]
enum SymbolValue {
    Code(u32),
    Data(u32),
}

impl Assembler {
    fn new() -> Assembler {
        Assembler {
            section: Section::Text,
            pending: Vec::new(),
            data: Vec::new(),
            symbols: HashMap::new(),
            program_symbols: crate::SymbolTable::new(),
        }
    }

    fn assemble(mut self, source: &str) -> Result<Program, AsmError> {
        for (line_index, raw_line) in source.lines().enumerate() {
            let line_no = line_index + 1;
            let line = strip_comment(raw_line).trim();
            if line.is_empty() {
                continue;
            }
            self.line(line, line_no)?;
        }
        self.link()
    }

    fn line(&mut self, mut line: &str, line_no: usize) -> Result<(), AsmError> {
        // Leading labels, possibly several on one line.
        while let Some(colon) = find_label(line) {
            let name = line[..colon].trim();
            if !is_identifier(name) {
                return Err(AsmError::new(line_no, format!("invalid label `{name}`")));
            }
            self.define_label(name, line_no)?;
            line = line[colon + 1..].trim();
        }
        if line.is_empty() {
            return Ok(());
        }
        if let Some(directive) = line.strip_prefix('.') {
            return self.directive(directive, line_no);
        }
        if self.section != Section::Text {
            return Err(AsmError::new(
                line_no,
                "instruction outside of .text section",
            ));
        }
        let pending = parse_instr(line, line_no)?;
        self.pending.push(pending);
        Ok(())
    }

    fn define_label(&mut self, name: &str, line_no: usize) -> Result<(), AsmError> {
        if self.symbols.contains_key(name) {
            return Err(AsmError::new(line_no, format!("duplicate label `{name}`")));
        }
        match self.section {
            Section::Text => {
                let index = self.pending.len() as u32;
                self.symbols.insert(name.to_string(), SymbolValue::Code(index));
                self.program_symbols.define_code(name, index);
            }
            Section::Data => {
                let addr = DATA_BASE + self.data.len() as u32 * WORD;
                self.symbols.insert(name.to_string(), SymbolValue::Data(addr));
                // Size is patched once the next label or end of data is seen;
                // for simplicity we record size 0 here and fix it at link.
                self.program_symbols
                    .define_data(name, DataItem { addr, size: 0 });
            }
        }
        Ok(())
    }

    fn directive(&mut self, directive: &str, line_no: usize) -> Result<(), AsmError> {
        let (name, rest) = match directive.find(char::is_whitespace) {
            Some(at) => (&directive[..at], directive[at..].trim()),
            None => (directive, ""),
        };
        match name {
            "text" => self.section = Section::Text,
            "data" => self.section = Section::Data,
            "word" => {
                if self.section != Section::Data {
                    return Err(AsmError::new(line_no, ".word outside of .data section"));
                }
                for item in rest.split(',') {
                    let value = parse_imm(item.trim())
                        .ok_or_else(|| AsmError::new(line_no, format!("bad word `{item}`")))?;
                    self.data.push(value);
                }
            }
            "space" => {
                if self.section != Section::Data {
                    return Err(AsmError::new(line_no, ".space outside of .data section"));
                }
                let bytes: u32 = rest
                    .parse()
                    .map_err(|_| AsmError::new(line_no, format!("bad size `{rest}`")))?;
                let words = bytes.div_ceil(WORD);
                self.data.extend(std::iter::repeat_n(0, words as usize));
            }
            other => {
                return Err(AsmError::new(
                    line_no,
                    format!("unknown directive `.{other}`"),
                ))
            }
        }
        Ok(())
    }

    fn link(mut self) -> Result<Program, AsmError> {
        let mut text = Vec::with_capacity(self.pending.len());
        let resolve_code = |symbols: &HashMap<String, SymbolValue>,
                            label: &str,
                            line: usize|
         -> Result<u32, AsmError> {
            match symbols.get(label) {
                Some(SymbolValue::Code(index)) => Ok(*index),
                Some(SymbolValue::Data(_)) => Err(AsmError::new(
                    line,
                    format!("`{label}` is a data symbol, expected code label"),
                )),
                None => Err(AsmError::new(line, format!("undefined label `{label}`"))),
            }
        };
        for pending in std::mem::take(&mut self.pending) {
            let instr = match pending {
                Pending::Done(instr) => instr,
                Pending::Branch {
                    cond,
                    rs,
                    rt,
                    label,
                    line,
                } => Instr::Branch {
                    cond,
                    rs,
                    rt,
                    target: resolve_code(&self.symbols, &label, line)?,
                },
                Pending::Jump { label, line } => Instr::Jump {
                    target: resolve_code(&self.symbols, &label, line)?,
                },
                Pending::Call { label, line } => Instr::Call {
                    target: resolve_code(&self.symbols, &label, line)?,
                },
                Pending::LiSymbol { rd, label, line } => {
                    let imm = match self.symbols.get(&label) {
                        Some(SymbolValue::Code(index)) => *index as i32,
                        Some(SymbolValue::Data(addr)) => *addr as i32,
                        None => {
                            return Err(AsmError::new(
                                line,
                                format!("undefined label `{label}`"),
                            ))
                        }
                    };
                    Instr::Li { rd, imm }
                }
            };
            text.push(instr);
        }

        // Patch data symbol sizes: each extends to the next symbol or the
        // end of the segment.
        let mut data_symbols: Vec<(String, u32)> = self
            .symbols
            .iter()
            .filter_map(|(name, value)| match value {
                SymbolValue::Data(addr) => Some((name.clone(), *addr)),
                SymbolValue::Code(_) => None,
            })
            .collect();
        data_symbols.sort_by_key(|&(_, addr)| addr);
        let data_end = DATA_BASE + self.data.len() as u32 * WORD;
        let mut patched = crate::SymbolTable::new();
        for (name, index) in self.program_symbols.code_symbols() {
            patched.define_code(name, index);
        }
        for (i, (name, addr)) in data_symbols.iter().enumerate() {
            let end = data_symbols
                .get(i + 1)
                .map(|&(_, next)| next)
                .unwrap_or(data_end);
            patched.define_data(name.clone(), DataItem {
                addr: *addr,
                size: end - addr,
            });
        }

        // Execution starts at `__start` when defined (compiler-emitted
        // stubs), else `main`, else instruction 0.
        let entry = match (self.symbols.get("__start"), self.symbols.get("main")) {
            (Some(SymbolValue::Code(index)), _) => *index,
            (_, Some(SymbolValue::Code(index))) => *index,
            _ => 0,
        };
        let program = Program {
            text,
            data: self.data,
            entry,
            symbols: patched,
        };
        if let Err(index) = program.validate() {
            return Err(AsmError::new(
                0,
                format!("instruction {index} has an out-of-range target"),
            ));
        }
        Ok(program)
    }
}

fn strip_comment(line: &str) -> &str {
    match line.find(['#', ';']) {
        Some(at) => &line[..at],
        None => line,
    }
}

/// Finds the colon ending a leading label, if the line starts with one.
fn find_label(line: &str) -> Option<usize> {
    let colon = line.find(':')?;
    let head = &line[..colon];
    if is_identifier(head.trim()) {
        Some(colon)
    } else {
        None
    }
}

fn is_identifier(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_imm(text: &str) -> Option<i32> {
    let text = text.trim();
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        return u32::from_str_radix(hex, 16).ok().map(|v| v as i32);
    }
    if let Some(hex) = text.strip_prefix("-0x") {
        return i64::from_str_radix(hex, 16)
            .ok()
            .map(|v| (-v) as i32);
    }
    text.parse().ok()
}

fn parse_instr(line: &str, line_no: usize) -> Result<Pending, AsmError> {
    let (mnemonic, rest) = match line.find(char::is_whitespace) {
        Some(at) => (&line[..at], line[at..].trim()),
        None => (line, ""),
    };
    let operands: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    };
    let err = |message: String| AsmError::new(line_no, message);
    let need = |count: usize| -> Result<(), AsmError> {
        if operands.len() == count {
            Ok(())
        } else {
            Err(AsmError::new(
                line_no,
                format!(
                    "`{mnemonic}` expects {count} operand(s), found {}",
                    operands.len()
                ),
            ))
        }
    };
    let reg = |text: &str| -> Result<Reg, AsmError> {
        Reg::parse(text).ok_or_else(|| AsmError::new(line_no, format!("bad register `{text}`")))
    };

    // ALU register-register forms.
    if let Some(op) = AluOp::ALL.iter().find(|op| op.mnemonic() == mnemonic) {
        need(3)?;
        return Ok(Pending::Done(Instr::Alu {
            op: *op,
            rd: reg(operands[0])?,
            rs: reg(operands[1])?,
            rt: reg(operands[2])?,
        }));
    }
    // ALU immediate forms (`addi`, `slti`, ...).
    if let Some(base) = mnemonic.strip_suffix('i') {
        if let Some(op) = AluOp::ALL.iter().find(|op| op.mnemonic() == base) {
            need(3)?;
            let imm = parse_imm(operands[2])
                .ok_or_else(|| err(format!("bad immediate `{}`", operands[2])))?;
            return Ok(Pending::Done(Instr::AluI {
                op: *op,
                rd: reg(operands[0])?,
                rs: reg(operands[1])?,
                imm,
            }));
        }
    }
    // Branches.
    if let Some(cond) = BranchCond::ALL.iter().find(|c| c.mnemonic() == mnemonic) {
        need(3)?;
        return Ok(Pending::Branch {
            cond: *cond,
            rs: reg(operands[0])?,
            rt: reg(operands[1])?,
            label: operands[2].to_string(),
            line: line_no,
        });
    }

    match mnemonic {
        "cmovn" | "cmovz" => {
            need(3)?;
            let rd = reg(operands[0])?;
            let rs = reg(operands[1])?;
            let rt = reg(operands[2])?;
            Ok(Pending::Done(if mnemonic == "cmovn" {
                Instr::CMovN { rd, rs, rt }
            } else {
                Instr::CMovZ { rd, rs, rt }
            }))
        }
        "li" => {
            need(2)?;
            let rd = reg(operands[0])?;
            match parse_imm(operands[1]) {
                Some(imm) => Ok(Pending::Done(Instr::Li { rd, imm })),
                None if is_identifier(operands[1]) => Ok(Pending::LiSymbol {
                    rd,
                    label: operands[1].to_string(),
                    line: line_no,
                }),
                None => Err(err(format!("bad immediate `{}`", operands[1]))),
            }
        }
        "mv" => {
            need(2)?;
            Ok(Pending::Done(Instr::AluI {
                op: AluOp::Add,
                rd: reg(operands[0])?,
                rs: reg(operands[1])?,
                imm: 0,
            }))
        }
        "lw" => {
            need(2)?;
            let (offset, base) = parse_mem(operands[1], line_no)?;
            Ok(Pending::Done(Instr::Lw {
                rd: reg(operands[0])?,
                base,
                offset,
            }))
        }
        "sw" => {
            need(2)?;
            let (offset, base) = parse_mem(operands[1], line_no)?;
            Ok(Pending::Done(Instr::Sw {
                rs: reg(operands[0])?,
                base,
                offset,
            }))
        }
        "j" => {
            need(1)?;
            Ok(Pending::Jump {
                label: operands[0].to_string(),
                line: line_no,
            })
        }
        "jr" => {
            need(1)?;
            Ok(Pending::Done(Instr::JumpR {
                rs: reg(operands[0])?,
            }))
        }
        "call" => {
            need(1)?;
            Ok(Pending::Call {
                label: operands[0].to_string(),
                line: line_no,
            })
        }
        "callr" => {
            need(1)?;
            Ok(Pending::Done(Instr::CallR {
                rs: reg(operands[0])?,
            }))
        }
        "ret" => {
            need(0)?;
            Ok(Pending::Done(Instr::Ret))
        }
        "halt" => {
            need(0)?;
            Ok(Pending::Done(Instr::Halt))
        }
        "nop" => {
            need(0)?;
            Ok(Pending::Done(Instr::Nop))
        }
        other => Err(err(format!("unknown mnemonic `{other}`"))),
    }
}

/// Parses a memory operand `offset(base)`, e.g. `-4(sp)` or `0(r9)`.
fn parse_mem(text: &str, line_no: usize) -> Result<(i32, Reg), AsmError> {
    let err = || AsmError::new(line_no, format!("bad memory operand `{text}`"));
    let open = text.find('(').ok_or_else(err)?;
    let close = text.rfind(')').ok_or_else(err)?;
    if close != text.len() - 1 || close <= open {
        return Err(err());
    }
    let offset_text = text[..open].trim();
    let offset = if offset_text.is_empty() {
        0
    } else {
        parse_imm(offset_text).ok_or_else(err)?
    };
    let base = Reg::parse(text[open + 1..close].trim()).ok_or_else(err)?;
    Ok((offset, base))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_loop() {
        let program = assemble(
            r#"
            .data
            arr: .word 10, 20, 30
            .text
            main:
                li r8, arr
                li r9, 0
                li r10, 3
            loop:
                lw r11, 0(r8)
                add r9, r9, r11
                addi r8, r8, 4
                addi r10, r10, -1
                bgt r10, r0, loop
                halt
            "#,
        )
        .unwrap();
        assert_eq!(program.text.len(), 9);
        assert_eq!(program.data, vec![10, 20, 30]);
        assert_eq!(program.entry, 0);
        // `li r8, arr` resolves to the data base address.
        assert_eq!(
            program.text[0],
            Instr::Li {
                rd: Reg::new(8),
                imm: DATA_BASE as i32
            }
        );
        // Loop back-edge points at instruction 3.
        assert_eq!(
            program.text[7],
            Instr::Branch {
                cond: BranchCond::Gt,
                rs: Reg::new(10),
                rt: Reg::ZERO,
                target: 3
            }
        );
    }

    #[test]
    fn entry_defaults_to_zero_without_main() {
        let program = assemble(".text\nstart: nop\n halt").unwrap();
        assert_eq!(program.entry, 0);
    }

    #[test]
    fn entry_is_main() {
        let program = assemble(".text\nhelper: ret\nmain: halt").unwrap();
        assert_eq!(program.entry, 1);
    }

    #[test]
    fn undefined_label_is_error() {
        let err = assemble(".text\n j nowhere").unwrap_err();
        assert!(err.to_string().contains("undefined label"));
    }

    #[test]
    fn duplicate_label_is_error() {
        let err = assemble(".text\nx: nop\nx: nop").unwrap_err();
        assert!(err.to_string().contains("duplicate label"));
    }

    #[test]
    fn unknown_mnemonic_is_error() {
        let err = assemble(".text\n frob r1, r2").unwrap_err();
        assert!(err.to_string().contains("unknown mnemonic"));
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn space_directive_reserves_words() {
        let program = assemble(".data\nbuf: .space 10\nnext: .word 7\n.text\nmain: halt").unwrap();
        // 10 bytes round up to 3 words.
        assert_eq!(program.data.len(), 4);
        let buf = program.symbols.data("buf").unwrap();
        assert_eq!(buf.addr, DATA_BASE);
        assert_eq!(buf.size, 12);
        let next = program.symbols.data("next").unwrap();
        assert_eq!(next.addr, DATA_BASE + 12);
        assert_eq!(next.size, 4);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let program = assemble(
            "# leading comment\n.text\nmain: nop ; trailing\n\n halt # end\n",
        )
        .unwrap();
        assert_eq!(program.text.len(), 2);
    }

    #[test]
    fn branch_to_data_symbol_is_error() {
        let err = assemble(".data\nx: .word 1\n.text\nmain: j x").unwrap_err();
        assert!(err.to_string().contains("data symbol"));
    }

    #[test]
    fn memory_operand_forms() {
        let program = assemble(".text\nmain: lw r8, (sp)\n sw r8, -8(fp)\n halt").unwrap();
        assert_eq!(
            program.text[0],
            Instr::Lw {
                rd: Reg::new(8),
                base: Reg::SP,
                offset: 0
            }
        );
        assert_eq!(
            program.text[1],
            Instr::Sw {
                rs: Reg::new(8),
                base: Reg::FP,
                offset: -8
            }
        );
    }

    #[test]
    fn hex_immediates() {
        let program = assemble(".text\nmain: li r8, 0x10\n halt").unwrap();
        assert_eq!(
            program.text[0],
            Instr::Li {
                rd: Reg::new(8),
                imm: 16
            }
        );
    }

    #[test]
    fn operand_count_mismatch() {
        let err = assemble(".text\nmain: add r1, r2").unwrap_err();
        assert!(err.to_string().contains("expects 3 operand"));
    }

    #[test]
    fn pseudo_mv() {
        let program = assemble(".text\nmain: mv r8, r9\n halt").unwrap();
        assert_eq!(
            program.text[0],
            Instr::AluI {
                op: AluOp::Add,
                rd: Reg::new(8),
                rs: Reg::new(9),
                imm: 0
            }
        );
    }
}
