use std::fmt;

/// One of the 32 architectural registers.
///
/// Register conventions (loosely MIPS o32):
///
/// | register | alias  | role |
/// |----------|--------|------|
/// | `r0`     | `zero` | hardwired zero |
/// | `r2`     | `v0`   | return value |
/// | `r4`–`r7`| `a0`–`a3` | arguments |
/// | `r8`–`r27` |      | allocatable temporaries |
/// | `r29`    | `sp`   | stack pointer |
/// | `r30`    | `fp`   | frame pointer |
/// | `r31`    | `ra`   | return address |
///
/// # Example
///
/// ```
/// use clfp_isa::Reg;
/// assert_eq!(Reg::SP.index(), 29);
/// assert_eq!(Reg::new(29), Reg::SP);
/// assert_eq!(Reg::SP.to_string(), "sp");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Reg(u8);

impl Reg {
    /// The hardwired-zero register `r0`.
    pub const ZERO: Reg = Reg(0);
    /// Return-value register `r2`.
    pub const V0: Reg = Reg(2);
    /// Second return-value register `r3`.
    pub const V1: Reg = Reg(3);
    /// First argument register `r4`.
    pub const A0: Reg = Reg(4);
    /// Second argument register `r5`.
    pub const A1: Reg = Reg(5);
    /// Third argument register `r6`.
    pub const A2: Reg = Reg(6);
    /// Fourth argument register `r7`.
    pub const A3: Reg = Reg(7);
    /// Stack pointer `r29`.
    pub const SP: Reg = Reg(29);
    /// Frame pointer `r30`.
    pub const FP: Reg = Reg(30);
    /// Return address `r31`.
    pub const RA: Reg = Reg(31);

    /// Number of architectural registers.
    pub const COUNT: usize = 32;

    /// First register the compiler may allocate to program variables.
    pub const FIRST_ALLOCATABLE: u8 = 8;
    /// One past the last register the compiler may allocate.
    pub const LAST_ALLOCATABLE: u8 = 28;

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn new(index: u8) -> Reg {
        assert!(index < 32, "register index {index} out of range");
        Reg(index)
    }

    /// The register's index, in `0..32`.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hardwired-zero register.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Parses a register name: `r0`–`r31` or one of the aliases
    /// `zero`, `v0`, `v1`, `a0`–`a3`, `sp`, `fp`, `ra`.
    pub fn parse(name: &str) -> Option<Reg> {
        let reg = match name {
            "zero" => Reg::ZERO,
            "v0" => Reg::V0,
            "v1" => Reg::V1,
            "a0" => Reg::A0,
            "a1" => Reg::A1,
            "a2" => Reg::A2,
            "a3" => Reg::A3,
            "sp" => Reg::SP,
            "fp" => Reg::FP,
            "ra" => Reg::RA,
            _ => {
                let index: u8 = name.strip_prefix('r')?.parse().ok()?;
                if index >= 32 {
                    return None;
                }
                Reg(index)
            }
        };
        Some(reg)
    }

    /// Iterates over all 32 registers in index order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..32).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Reg::ZERO => f.write_str("zero"),
            Reg::SP => f.write_str("sp"),
            Reg::FP => f.write_str("fp"),
            Reg::RA => f.write_str("ra"),
            Reg(n) => write!(f, "r{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_numeric_names() {
        for i in 0..32 {
            assert_eq!(Reg::parse(&format!("r{i}")), Some(Reg::new(i)));
        }
    }

    #[test]
    fn parse_aliases() {
        assert_eq!(Reg::parse("zero"), Some(Reg::ZERO));
        assert_eq!(Reg::parse("sp"), Some(Reg::SP));
        assert_eq!(Reg::parse("fp"), Some(Reg::FP));
        assert_eq!(Reg::parse("ra"), Some(Reg::RA));
        assert_eq!(Reg::parse("v0"), Some(Reg::V0));
        assert_eq!(Reg::parse("a3"), Some(Reg::A3));
    }

    #[test]
    fn parse_rejects_out_of_range() {
        assert_eq!(Reg::parse("r32"), None);
        assert_eq!(Reg::parse("r99"), None);
        assert_eq!(Reg::parse("x1"), None);
        assert_eq!(Reg::parse(""), None);
    }

    #[test]
    fn display_roundtrips_through_parse() {
        for reg in Reg::all() {
            assert_eq!(Reg::parse(&reg.to_string()), Some(reg));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_panics_out_of_range() {
        let _ = Reg::new(32);
    }

    #[test]
    fn zero_is_zero() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::SP.is_zero());
    }
}
