use std::collections::BTreeMap;
use std::fmt;

use crate::{Instr, DATA_BASE, WORD};

/// A named data-segment item.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DataItem {
    /// Byte address of the item within the simulated address space.
    pub addr: u32,
    /// Size in bytes (always a multiple of the word size).
    pub size: u32,
}

/// Maps symbolic names to text-segment indices and data-segment addresses.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct SymbolTable {
    code: BTreeMap<String, u32>,
    data: BTreeMap<String, DataItem>,
}

impl SymbolTable {
    /// Creates an empty symbol table.
    pub fn new() -> SymbolTable {
        SymbolTable::default()
    }

    /// Records a code label at the given instruction index.
    ///
    /// Returns `false` (and leaves the table unchanged) if the name was
    /// already defined.
    pub fn define_code(&mut self, name: impl Into<String>, index: u32) -> bool {
        let name = name.into();
        if self.data.contains_key(&name) {
            return false;
        }
        match self.code.entry(name) {
            std::collections::btree_map::Entry::Occupied(_) => false,
            std::collections::btree_map::Entry::Vacant(entry) => {
                entry.insert(index);
                true
            }
        }
    }

    /// Records a data symbol.
    ///
    /// Returns `false` (and leaves the table unchanged) if the name was
    /// already defined.
    pub fn define_data(&mut self, name: impl Into<String>, item: DataItem) -> bool {
        let name = name.into();
        if self.code.contains_key(&name) {
            return false;
        }
        match self.data.entry(name) {
            std::collections::btree_map::Entry::Occupied(_) => false,
            std::collections::btree_map::Entry::Vacant(entry) => {
                entry.insert(item);
                true
            }
        }
    }

    /// Looks up a code label, returning its instruction index.
    pub fn code(&self, name: &str) -> Option<u32> {
        self.code.get(name).copied()
    }

    /// Looks up a data symbol.
    pub fn data(&self, name: &str) -> Option<&DataItem> {
        self.data.get(name)
    }

    /// Iterates over all code labels in name order.
    pub fn code_symbols(&self) -> impl Iterator<Item = (&str, u32)> {
        self.code.iter().map(|(name, &index)| (name.as_str(), index))
    }

    /// Iterates over all data symbols in name order.
    pub fn data_symbols(&self) -> impl Iterator<Item = (&str, &DataItem)> {
        self.data.iter().map(|(name, item)| (name.as_str(), item))
    }

    /// The code label defined at instruction `index` with the greatest
    /// index not exceeding `index`, i.e. the enclosing function/label name.
    pub fn nearest_code_label(&self, index: u32) -> Option<(&str, u32)> {
        self.code
            .iter()
            .filter(|&(_, &at)| at <= index)
            .max_by_key(|&(_, &at)| at)
            .map(|(name, &at)| (name.as_str(), at))
    }
}

/// A fully linked program: text segment, initial data segment, entry point,
/// and symbols.
///
/// Branch and call targets in `text` are instruction indices. The data
/// segment is loaded at [`DATA_BASE`](crate::DATA_BASE) when executed.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Program {
    /// The instructions.
    pub text: Vec<Instr>,
    /// Initial contents of the data segment, in words.
    pub data: Vec<i32>,
    /// Entry point, as an instruction index.
    pub entry: u32,
    /// Symbol table.
    pub symbols: SymbolTable,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Byte address one past the end of the initial data segment.
    pub fn data_end(&self) -> u32 {
        DATA_BASE + self.data.len() as u32 * WORD
    }

    /// Validates internal consistency: all branch/jump/call targets must be
    /// within the text segment.
    ///
    /// # Errors
    ///
    /// Returns the index of the first instruction with an out-of-range
    /// target.
    pub fn validate(&self) -> Result<(), usize> {
        let len = self.text.len() as u32;
        for (index, instr) in self.text.iter().enumerate() {
            let target = match *instr {
                Instr::Branch { target, .. }
                | Instr::Jump { target }
                | Instr::Call { target } => Some(target),
                _ => None,
            };
            if let Some(target) = target {
                if target >= len {
                    return Err(index);
                }
            }
        }
        if self.entry >= len && len > 0 {
            return Err(self.entry as usize);
        }
        Ok(())
    }

    /// A stable fingerprint over the text and data segments, used to check
    /// that a stored trace matches the program it is replayed against
    /// (FNV-1a over the instruction encodings and data words).
    pub fn fingerprint(&self) -> u64 {
        let mut hash: u64 = 0xcbf29ce484222325;
        let mut mix = |value: u64| {
            for byte in value.to_le_bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x100000001b3);
            }
        };
        mix(self.text.len() as u64);
        for &instr in &self.text {
            mix(crate::encode(instr));
        }
        mix(self.data.len() as u64);
        for &word in &self.data {
            mix(word as u32 as u64);
        }
        mix(self.entry as u64);
        hash
    }

    /// Renders the program as a disassembly listing with labels.
    pub fn disassemble(&self) -> String {
        let mut by_index: BTreeMap<u32, Vec<&str>> = BTreeMap::new();
        for (name, index) in self.symbols.code_symbols() {
            by_index.entry(index).or_default().push(name);
        }
        let mut out = String::new();
        for (index, instr) in self.text.iter().enumerate() {
            if let Some(names) = by_index.get(&(index as u32)) {
                for name in names {
                    out.push_str(name);
                    out.push_str(":\n");
                }
            }
            out.push_str(&format!("{index:6}:  {instr}\n"));
        }
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.disassemble())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reg;

    #[test]
    fn symbol_table_rejects_duplicates() {
        let mut table = SymbolTable::new();
        assert!(table.define_code("main", 0));
        assert!(!table.define_code("main", 4));
        assert_eq!(table.code("main"), Some(0));
        assert!(table.define_data("buf", DataItem { addr: 0x1000, size: 8 }));
        assert!(!table.define_data("buf", DataItem { addr: 0x2000, size: 4 }));
        // Cross-namespace collisions are also rejected.
        assert!(!table.define_data("main", DataItem { addr: 0x3000, size: 4 }));
        assert!(!table.define_code("buf", 2));
    }

    #[test]
    fn nearest_code_label_finds_enclosing() {
        let mut table = SymbolTable::new();
        table.define_code("main", 0);
        table.define_code("helper", 10);
        assert_eq!(table.nearest_code_label(5), Some(("main", 0)));
        assert_eq!(table.nearest_code_label(10), Some(("helper", 10)));
        assert_eq!(table.nearest_code_label(99), Some(("helper", 10)));
    }

    #[test]
    fn validate_catches_bad_target() {
        let mut program = Program::new();
        program.text = vec![Instr::Jump { target: 5 }, Instr::Halt];
        assert_eq!(program.validate(), Err(0));
        program.text[0] = Instr::Jump { target: 1 };
        assert_eq!(program.validate(), Ok(()));
    }

    #[test]
    fn validate_catches_bad_entry() {
        let mut program = Program::new();
        program.text = vec![Instr::Halt];
        program.entry = 3;
        assert_eq!(program.validate(), Err(3));
    }

    #[test]
    fn disassemble_includes_labels() {
        let mut program = Program::new();
        program.text = vec![
            Instr::Li {
                rd: Reg::new(8),
                imm: 1,
            },
            Instr::Halt,
        ];
        program.symbols.define_code("main", 0);
        let listing = program.disassemble();
        assert!(listing.contains("main:"));
        assert!(listing.contains("li r8, 1"));
        assert!(listing.contains("halt"));
    }

    #[test]
    fn fingerprint_distinguishes_programs() {
        let mut a = Program::new();
        a.text = vec![Instr::Nop, Instr::Halt];
        let mut b = a.clone();
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.text[0] = Instr::Ret;
        assert_ne!(a.fingerprint(), b.fingerprint());
        b = a.clone();
        b.data.push(7);
        assert_ne!(a.fingerprint(), b.fingerprint());
        b = a.clone();
        b.entry = 1;
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn data_end_accounts_for_words() {
        let mut program = Program::new();
        program.data = vec![1, 2, 3];
        assert_eq!(program.data_end(), DATA_BASE + 12);
    }
}
