use std::fmt;

/// Error produced by the assembler, carrying the 1-based source line and a
/// description of the problem.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AsmError {
    line: usize,
    message: String,
}

impl AsmError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> AsmError {
        AsmError {
            line,
            message: message.into(),
        }
    }

    /// 1-based line number of the offending source line (0 for file-level
    /// errors such as undefined labels discovered at link time).
    pub fn line(&self) -> usize {
        self.line
    }

    /// Human-readable description of the problem.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "assembly error: {}", self.message)
        } else {
            write!(f, "assembly error at line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for AsmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let err = AsmError::new(7, "unknown mnemonic `frob`");
        assert_eq!(
            err.to_string(),
            "assembly error at line 7: unknown mnemonic `frob`"
        );
        assert_eq!(err.line(), 7);
        assert_eq!(err.message(), "unknown mnemonic `frob`");
    }

    #[test]
    fn display_file_level() {
        let err = AsmError::new(0, "undefined label `missing`");
        assert_eq!(err.to_string(), "assembly error: undefined label `missing`");
    }
}
