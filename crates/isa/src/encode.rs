//! Binary encoding of instructions.
//!
//! The clfp machine word for instruction storage is 64 bits wide, laid out
//! as:
//!
//! ```text
//!  63      56 55      48 47      40 39      32 31                        0
//! +----------+----------+----------+----------+--------------------------+
//! |  opcode  |    rd    |    rs    |    rt    |    imm / target (u32)    |
//! +----------+----------+----------+----------+--------------------------+
//! ```
//!
//! This is an abstract encoding — the study never depends on instruction
//! *size*, only on instruction *count* — but a real binary format lets the
//! toolchain write object files and lets property tests pin down that every
//! instruction roundtrips losslessly.

use std::fmt;

use crate::{AluOp, BranchCond, Instr, Reg};

const OP_ALU: u8 = 0x00; // + AluOp index (0..16)
const OP_ALUI: u8 = 0x10; // + AluOp index (0..16)
const OP_LI: u8 = 0x20;
const OP_LW: u8 = 0x21;
const OP_SW: u8 = 0x22;
const OP_BRANCH: u8 = 0x30; // + BranchCond index (0..6)
const OP_JUMP: u8 = 0x40;
const OP_JUMPR: u8 = 0x41;
const OP_CALL: u8 = 0x42;
const OP_CALLR: u8 = 0x43;
const OP_RET: u8 = 0x44;
const OP_HALT: u8 = 0x50;
const OP_NOP: u8 = 0x51;
const OP_CMOVN: u8 = 0x52;
const OP_CMOVZ: u8 = 0x53;

/// Error produced when [`decode`] encounters an invalid instruction word.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct DecodeError {
    word: u64,
}

impl DecodeError {
    /// The word that failed to decode.
    pub fn word(&self) -> u64 {
        self.word
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid instruction word {:#018x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

fn pack(opcode: u8, rd: Reg, rs: Reg, rt: Reg, imm: u32) -> u64 {
    (opcode as u64) << 56
        | (rd.index() as u64) << 48
        | (rs.index() as u64) << 40
        | (rt.index() as u64) << 32
        | imm as u64
}

/// Encodes an instruction into its 64-bit binary form.
///
/// # Example
///
/// ```
/// use clfp_isa::{encode, decode, Instr, Reg};
///
/// let instr = Instr::Lw { rd: Reg::new(8), base: Reg::SP, offset: -4 };
/// assert_eq!(decode(encode(instr))?, instr);
/// # Ok::<(), clfp_isa::DecodeError>(())
/// ```
pub fn encode(instr: Instr) -> u64 {
    let z = Reg::ZERO;
    match instr {
        Instr::Alu { op, rd, rs, rt } => pack(
            OP_ALU + AluOp::ALL.iter().position(|&o| o == op).unwrap() as u8,
            rd,
            rs,
            rt,
            0,
        ),
        Instr::AluI { op, rd, rs, imm } => pack(
            OP_ALUI + AluOp::ALL.iter().position(|&o| o == op).unwrap() as u8,
            rd,
            rs,
            z,
            imm as u32,
        ),
        Instr::Li { rd, imm } => pack(OP_LI, rd, z, z, imm as u32),
        Instr::Lw { rd, base, offset } => pack(OP_LW, rd, base, z, offset as u32),
        Instr::Sw { rs, base, offset } => pack(OP_SW, z, rs, base, offset as u32),
        Instr::Branch {
            cond,
            rs,
            rt,
            target,
        } => pack(
            OP_BRANCH + BranchCond::ALL.iter().position(|&c| c == cond).unwrap() as u8,
            z,
            rs,
            rt,
            target,
        ),
        Instr::Jump { target } => pack(OP_JUMP, z, z, z, target),
        Instr::JumpR { rs } => pack(OP_JUMPR, z, rs, z, 0),
        Instr::Call { target } => pack(OP_CALL, z, z, z, target),
        Instr::CallR { rs } => pack(OP_CALLR, z, rs, z, 0),
        Instr::Ret => pack(OP_RET, z, z, z, 0),
        Instr::Halt => pack(OP_HALT, z, z, z, 0),
        Instr::Nop => pack(OP_NOP, z, z, z, 0),
        Instr::CMovN { rd, rs, rt } => pack(OP_CMOVN, rd, rs, rt, 0),
        Instr::CMovZ { rd, rs, rt } => pack(OP_CMOVZ, rd, rs, rt, 0),
    }
}

/// Decodes a 64-bit instruction word.
///
/// # Errors
///
/// Returns [`DecodeError`] if the opcode byte is not a valid instruction, or
/// a register field is out of range.
pub fn decode(word: u64) -> Result<Instr, DecodeError> {
    let err = DecodeError { word };
    let opcode = (word >> 56) as u8;
    let rd_bits = (word >> 48) as u8;
    let rs_bits = (word >> 40) as u8;
    let rt_bits = (word >> 32) as u8;
    if rd_bits >= 32 || rs_bits >= 32 || rt_bits >= 32 {
        return Err(err);
    }
    let rd = Reg::new(rd_bits);
    let rs = Reg::new(rs_bits);
    let rt = Reg::new(rt_bits);
    let imm = word as u32;

    let instr = match opcode {
        op if (OP_ALU..OP_ALU + 16).contains(&op) => Instr::Alu {
            op: AluOp::ALL[(op - OP_ALU) as usize],
            rd,
            rs,
            rt,
        },
        op if (OP_ALUI..OP_ALUI + 16).contains(&op) => Instr::AluI {
            op: AluOp::ALL[(op - OP_ALUI) as usize],
            rd,
            rs,
            imm: imm as i32,
        },
        OP_LI => Instr::Li {
            rd,
            imm: imm as i32,
        },
        OP_LW => Instr::Lw {
            rd,
            base: rs,
            offset: imm as i32,
        },
        OP_SW => Instr::Sw {
            rs,
            base: rt,
            offset: imm as i32,
        },
        op if (OP_BRANCH..OP_BRANCH + 6).contains(&op) => Instr::Branch {
            cond: BranchCond::ALL[(op - OP_BRANCH) as usize],
            rs,
            rt,
            target: imm,
        },
        OP_JUMP => Instr::Jump { target: imm },
        OP_JUMPR => Instr::JumpR { rs },
        OP_CALL => Instr::Call { target: imm },
        OP_CALLR => Instr::CallR { rs },
        OP_RET => Instr::Ret,
        OP_HALT => Instr::Halt,
        OP_NOP => Instr::Nop,
        OP_CMOVN => Instr::CMovN { rd, rs, rt },
        OP_CMOVZ => Instr::CMovZ { rd, rs, rt },
        _ => return Err(err),
    };
    Ok(instr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_reg() -> impl Strategy<Value = Reg> {
        (0u8..32).prop_map(Reg::new)
    }

    fn arb_alu_op() -> impl Strategy<Value = AluOp> {
        prop::sample::select(AluOp::ALL.to_vec())
    }

    fn arb_cond() -> impl Strategy<Value = BranchCond> {
        prop::sample::select(BranchCond::ALL.to_vec())
    }

    fn arb_instr() -> impl Strategy<Value = Instr> {
        prop_oneof![
            (arb_alu_op(), arb_reg(), arb_reg(), arb_reg())
                .prop_map(|(op, rd, rs, rt)| Instr::Alu { op, rd, rs, rt }),
            (arb_alu_op(), arb_reg(), arb_reg(), any::<i32>())
                .prop_map(|(op, rd, rs, imm)| Instr::AluI { op, rd, rs, imm }),
            (arb_reg(), any::<i32>()).prop_map(|(rd, imm)| Instr::Li { rd, imm }),
            (arb_reg(), arb_reg(), any::<i32>())
                .prop_map(|(rd, base, offset)| Instr::Lw { rd, base, offset }),
            (arb_reg(), arb_reg(), any::<i32>())
                .prop_map(|(rs, base, offset)| Instr::Sw { rs, base, offset }),
            (arb_cond(), arb_reg(), arb_reg(), any::<u32>()).prop_map(|(cond, rs, rt, target)| {
                Instr::Branch {
                    cond,
                    rs,
                    rt,
                    target,
                }
            }),
            any::<u32>().prop_map(|target| Instr::Jump { target }),
            arb_reg().prop_map(|rs| Instr::JumpR { rs }),
            any::<u32>().prop_map(|target| Instr::Call { target }),
            arb_reg().prop_map(|rs| Instr::CallR { rs }),
            Just(Instr::Ret),
            Just(Instr::Halt),
            Just(Instr::Nop),
            (arb_reg(), arb_reg(), arb_reg())
                .prop_map(|(rd, rs, rt)| Instr::CMovN { rd, rs, rt }),
            (arb_reg(), arb_reg(), arb_reg())
                .prop_map(|(rd, rs, rt)| Instr::CMovZ { rd, rs, rt }),
        ]
    }

    proptest! {
        #[test]
        fn roundtrip(instr in arb_instr()) {
            let word = encode(instr);
            prop_assert_eq!(decode(word).unwrap(), instr);
        }
    }

    #[test]
    fn decode_rejects_bad_opcode() {
        assert!(decode(0xff00_0000_0000_0000).is_err());
    }

    #[test]
    fn decode_rejects_bad_register() {
        // Valid NOP opcode but register field 33.
        let word = (OP_NOP as u64) << 56 | 33u64 << 48;
        assert!(decode(word).is_err());
    }

    #[test]
    fn decode_error_displays_word() {
        let err = decode(0xff00_0000_0000_0000).unwrap_err();
        assert!(err.to_string().contains("0xff00000000000000"));
        assert_eq!(err.word(), 0xff00_0000_0000_0000);
    }
}
