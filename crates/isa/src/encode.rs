//! Binary encoding of instructions.
//!
//! The clfp machine word for instruction storage is 64 bits wide, laid out
//! as:
//!
//! ```text
//!  63      56 55      48 47      40 39      32 31                        0
//! +----------+----------+----------+----------+--------------------------+
//! |  opcode  |    rd    |    rs    |    rt    |    imm / target (u32)    |
//! +----------+----------+----------+----------+--------------------------+
//! ```
//!
//! This is an abstract encoding — the study never depends on instruction
//! *size*, only on instruction *count* — but a real binary format lets the
//! toolchain write object files and lets property tests pin down that every
//! instruction roundtrips losslessly.

use std::fmt;

use crate::{AluOp, BranchCond, Instr, Reg};

const OP_ALU: u8 = 0x00; // + AluOp index (0..16)
const OP_ALUI: u8 = 0x10; // + AluOp index (0..16)
const OP_LI: u8 = 0x20;
const OP_LW: u8 = 0x21;
const OP_SW: u8 = 0x22;
const OP_BRANCH: u8 = 0x30; // + BranchCond index (0..6)
const OP_JUMP: u8 = 0x40;
const OP_JUMPR: u8 = 0x41;
const OP_CALL: u8 = 0x42;
const OP_CALLR: u8 = 0x43;
const OP_RET: u8 = 0x44;
const OP_HALT: u8 = 0x50;
const OP_NOP: u8 = 0x51;
const OP_CMOVN: u8 = 0x52;
const OP_CMOVZ: u8 = 0x53;

/// Error produced when [`decode`] encounters an invalid instruction word.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct DecodeError {
    word: u64,
}

impl DecodeError {
    /// The word that failed to decode.
    pub fn word(&self) -> u64 {
        self.word
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid instruction word {:#018x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

fn pack(opcode: u8, rd: Reg, rs: Reg, rt: Reg, imm: u32) -> u64 {
    (opcode as u64) << 56
        | (rd.index() as u64) << 48
        | (rs.index() as u64) << 40
        | (rt.index() as u64) << 32
        | imm as u64
}

/// Encodes an instruction into its 64-bit binary form.
///
/// # Example
///
/// ```
/// use clfp_isa::{encode, decode, Instr, Reg};
///
/// let instr = Instr::Lw { rd: Reg::new(8), base: Reg::SP, offset: -4 };
/// assert_eq!(decode(encode(instr))?, instr);
/// # Ok::<(), clfp_isa::DecodeError>(())
/// ```
pub fn encode(instr: Instr) -> u64 {
    let z = Reg::ZERO;
    match instr {
        Instr::Alu { op, rd, rs, rt } => pack(
            OP_ALU + AluOp::ALL.iter().position(|&o| o == op).unwrap() as u8,
            rd,
            rs,
            rt,
            0,
        ),
        Instr::AluI { op, rd, rs, imm } => pack(
            OP_ALUI + AluOp::ALL.iter().position(|&o| o == op).unwrap() as u8,
            rd,
            rs,
            z,
            imm as u32,
        ),
        Instr::Li { rd, imm } => pack(OP_LI, rd, z, z, imm as u32),
        Instr::Lw { rd, base, offset } => pack(OP_LW, rd, base, z, offset as u32),
        Instr::Sw { rs, base, offset } => pack(OP_SW, z, rs, base, offset as u32),
        Instr::Branch {
            cond,
            rs,
            rt,
            target,
        } => pack(
            OP_BRANCH + BranchCond::ALL.iter().position(|&c| c == cond).unwrap() as u8,
            z,
            rs,
            rt,
            target,
        ),
        Instr::Jump { target } => pack(OP_JUMP, z, z, z, target),
        Instr::JumpR { rs } => pack(OP_JUMPR, z, rs, z, 0),
        Instr::Call { target } => pack(OP_CALL, z, z, z, target),
        Instr::CallR { rs } => pack(OP_CALLR, z, rs, z, 0),
        Instr::Ret => pack(OP_RET, z, z, z, 0),
        Instr::Halt => pack(OP_HALT, z, z, z, 0),
        Instr::Nop => pack(OP_NOP, z, z, z, 0),
        Instr::CMovN { rd, rs, rt } => pack(OP_CMOVN, rd, rs, rt, 0),
        Instr::CMovZ { rd, rs, rt } => pack(OP_CMOVZ, rd, rs, rt, 0),
    }
}

/// Decodes a 64-bit instruction word.
///
/// # Errors
///
/// Returns [`DecodeError`] if the opcode byte is not a valid instruction, or
/// a register field is out of range.
pub fn decode(word: u64) -> Result<Instr, DecodeError> {
    let err = DecodeError { word };
    let opcode = (word >> 56) as u8;
    let rd_bits = (word >> 48) as u8;
    let rs_bits = (word >> 40) as u8;
    let rt_bits = (word >> 32) as u8;
    if rd_bits >= 32 || rs_bits >= 32 || rt_bits >= 32 {
        return Err(err);
    }
    let rd = Reg::new(rd_bits);
    let rs = Reg::new(rs_bits);
    let rt = Reg::new(rt_bits);
    let imm = word as u32;

    let instr = match opcode {
        op if (OP_ALU..OP_ALU + 16).contains(&op) => Instr::Alu {
            op: AluOp::ALL[(op - OP_ALU) as usize],
            rd,
            rs,
            rt,
        },
        op if (OP_ALUI..OP_ALUI + 16).contains(&op) => Instr::AluI {
            op: AluOp::ALL[(op - OP_ALUI) as usize],
            rd,
            rs,
            imm: imm as i32,
        },
        OP_LI => Instr::Li {
            rd,
            imm: imm as i32,
        },
        OP_LW => Instr::Lw {
            rd,
            base: rs,
            offset: imm as i32,
        },
        OP_SW => Instr::Sw {
            rs,
            base: rt,
            offset: imm as i32,
        },
        op if (OP_BRANCH..OP_BRANCH + 6).contains(&op) => Instr::Branch {
            cond: BranchCond::ALL[(op - OP_BRANCH) as usize],
            rs,
            rt,
            target: imm,
        },
        OP_JUMP => Instr::Jump { target: imm },
        OP_JUMPR => Instr::JumpR { rs },
        OP_CALL => Instr::Call { target: imm },
        OP_CALLR => Instr::CallR { rs },
        OP_RET => Instr::Ret,
        OP_HALT => Instr::Halt,
        OP_NOP => Instr::Nop,
        OP_CMOVN => Instr::CMovN { rd, rs, rt },
        OP_CMOVZ => Instr::CMovZ { rd, rs, rt },
        _ => return Err(err),
    };
    Ok(instr)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Stateless mix of an index into pseudo-random bits (splitmix64), the
    /// same std-only idiom the workload input generators use — no external
    /// `rand` dependency in the offline build.
    fn rnd(i: u64) -> u64 {
        let mut z = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn reg(bits: u64) -> Reg {
        Reg::new((bits % 32) as u8)
    }

    fn gen_instr(i: u64) -> Instr {
        let r = |lane: u64| reg(rnd(i ^ lane.wrapping_mul(0x1234_5678_9ABC)));
        let imm = rnd(i ^ 0xABCD) as i32;
        let target = rnd(i ^ 0x5A5A) as u32;
        let op = AluOp::ALL[(rnd(i ^ 0x0F0F) as usize) % AluOp::ALL.len()];
        let cond = BranchCond::ALL[(rnd(i ^ 0xF0F0) as usize) % BranchCond::ALL.len()];
        match rnd(i) % 15 {
            0 => Instr::Alu { op, rd: r(1), rs: r(2), rt: r(3) },
            1 => Instr::AluI { op, rd: r(1), rs: r(2), imm },
            2 => Instr::Li { rd: r(1), imm },
            3 => Instr::Lw { rd: r(1), base: r(2), offset: imm },
            4 => Instr::Sw { rs: r(1), base: r(2), offset: imm },
            5 => Instr::Branch { cond, rs: r(1), rt: r(2), target },
            6 => Instr::Jump { target },
            7 => Instr::JumpR { rs: r(1) },
            8 => Instr::Call { target },
            9 => Instr::CallR { rs: r(1) },
            10 => Instr::Ret,
            11 => Instr::Halt,
            12 => Instr::Nop,
            13 => Instr::CMovN { rd: r(1), rs: r(2), rt: r(3) },
            _ => Instr::CMovZ { rd: r(1), rs: r(2), rt: r(3) },
        }
    }

    #[test]
    fn roundtrip_random_instructions() {
        for i in 0..20_000u64 {
            let instr = gen_instr(i);
            let word = encode(instr);
            assert_eq!(decode(word).unwrap(), instr, "case {i}: {instr:?}");
        }
    }

    #[test]
    fn decode_rejects_bad_opcode() {
        assert!(decode(0xff00_0000_0000_0000).is_err());
    }

    #[test]
    fn decode_rejects_bad_register() {
        // Valid NOP opcode but register field 33.
        let word = (OP_NOP as u64) << 56 | 33u64 << 48;
        assert!(decode(word).is_err());
    }

    #[test]
    fn decode_error_displays_word() {
        let err = decode(0xff00_0000_0000_0000).unwrap_err();
        assert!(err.to_string().contains("0xff00000000000000"));
        assert_eq!(err.word(), 0xff00_0000_0000_0000);
    }
}
