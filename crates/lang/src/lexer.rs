//! The MiniC lexer.

use std::fmt;

use crate::LangError;

/// A source position (1-based line and column).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct Pos {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
}

/// The kind of a token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TokenKind {
    /// An integer literal (decimal, hex, or character literal).
    Int(i32),
    /// An identifier.
    Ident(String),
    /// A keyword.
    Fn,
    Var,
    IntType,
    If,
    Else,
    While,
    For,
    Return,
    Break,
    Continue,
    // Punctuation and operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semicolon,
    Colon,
    Arrow,
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    NotEq,
    Not,
    Amp,
    Pipe,
    Caret,
    AndAnd,
    OrOr,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            TokenKind::Int(v) => return write!(f, "integer `{v}`"),
            TokenKind::Ident(name) => return write!(f, "identifier `{name}`"),
            TokenKind::Fn => "`fn`",
            TokenKind::Var => "`var`",
            TokenKind::IntType => "`int`",
            TokenKind::If => "`if`",
            TokenKind::Else => "`else`",
            TokenKind::While => "`while`",
            TokenKind::For => "`for`",
            TokenKind::Return => "`return`",
            TokenKind::Break => "`break`",
            TokenKind::Continue => "`continue`",
            TokenKind::LParen => "`(`",
            TokenKind::RParen => "`)`",
            TokenKind::LBrace => "`{`",
            TokenKind::RBrace => "`}`",
            TokenKind::LBracket => "`[`",
            TokenKind::RBracket => "`]`",
            TokenKind::Comma => "`,`",
            TokenKind::Semicolon => "`;`",
            TokenKind::Colon => "`:`",
            TokenKind::Arrow => "`->`",
            TokenKind::Assign => "`=`",
            TokenKind::Plus => "`+`",
            TokenKind::Minus => "`-`",
            TokenKind::Star => "`*`",
            TokenKind::Slash => "`/`",
            TokenKind::Percent => "`%`",
            TokenKind::Shl => "`<<`",
            TokenKind::Shr => "`>>`",
            TokenKind::Lt => "`<`",
            TokenKind::Le => "`<=`",
            TokenKind::Gt => "`>`",
            TokenKind::Ge => "`>=`",
            TokenKind::EqEq => "`==`",
            TokenKind::NotEq => "`!=`",
            TokenKind::Not => "`!`",
            TokenKind::Amp => "`&`",
            TokenKind::Pipe => "`|`",
            TokenKind::Caret => "`^`",
            TokenKind::AndAnd => "`&&`",
            TokenKind::OrOr => "`||`",
            TokenKind::Eof => "end of input",
        };
        f.write_str(text)
    }
}

/// One token with its source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    /// The token's kind and payload.
    pub kind: TokenKind,
    /// Where the token starts.
    pub pos: Pos,
}

/// Streaming lexer over MiniC source text.
#[derive(Debug)]
pub struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
    column: usize,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `source`.
    pub fn new(source: &'a str) -> Lexer<'a> {
        Lexer {
            chars: source.chars().peekable(),
            line: 1,
            column: 1,
        }
    }

    /// Lexes the whole input.
    ///
    /// # Errors
    ///
    /// Returns a [`LangError`] on malformed literals or unexpected
    /// characters.
    pub fn tokenize(source: &'a str) -> Result<Vec<Token>, LangError> {
        let mut lexer = Lexer::new(source);
        let mut tokens = Vec::new();
        loop {
            let token = lexer.next_token()?;
            let done = token.kind == TokenKind::Eof;
            tokens.push(token);
            if done {
                return Ok(tokens);
            }
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn eat(&mut self, expected: char) -> bool {
        if self.peek() == Some(expected) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            column: self.column,
        }
    }

    fn skip_trivia(&mut self) -> Result<(), LangError> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') => {
                    // Possible comment; look ahead without consuming `/`
                    // unless it is one.
                    let mut clone = self.chars.clone();
                    clone.next();
                    match clone.next() {
                        Some('/') => {
                            while let Some(c) = self.peek() {
                                if c == '\n' {
                                    break;
                                }
                                self.bump();
                            }
                        }
                        Some('*') => {
                            let start = self.pos();
                            self.bump(); // '/'
                            self.bump(); // '*'
                            let mut closed = false;
                            while let Some(c) = self.bump() {
                                if c == '*' && self.eat('/') {
                                    closed = true;
                                    break;
                                }
                            }
                            if !closed {
                                return Err(LangError::new(
                                    start.line,
                                    start.column,
                                    "unterminated block comment",
                                ));
                            }
                        }
                        _ => return Ok(()),
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// Produces the next token.
    ///
    /// # Errors
    ///
    /// Returns a [`LangError`] on malformed input.
    pub fn next_token(&mut self) -> Result<Token, LangError> {
        self.skip_trivia()?;
        let pos = self.pos();
        let Some(c) = self.peek() else {
            return Ok(Token {
                kind: TokenKind::Eof,
                pos,
            });
        };
        let kind = match c {
            '0'..='9' => self.number(pos)?,
            '\'' => self.char_literal(pos)?,
            c if c.is_ascii_alphabetic() || c == '_' => self.ident_or_keyword(),
            _ => {
                self.bump();
                match c {
                    '(' => TokenKind::LParen,
                    ')' => TokenKind::RParen,
                    '{' => TokenKind::LBrace,
                    '}' => TokenKind::RBrace,
                    '[' => TokenKind::LBracket,
                    ']' => TokenKind::RBracket,
                    ',' => TokenKind::Comma,
                    ';' => TokenKind::Semicolon,
                    ':' => TokenKind::Colon,
                    '+' => TokenKind::Plus,
                    '-' => {
                        if self.eat('>') {
                            TokenKind::Arrow
                        } else {
                            TokenKind::Minus
                        }
                    }
                    '*' => TokenKind::Star,
                    '/' => TokenKind::Slash,
                    '%' => TokenKind::Percent,
                    '^' => TokenKind::Caret,
                    '=' => {
                        if self.eat('=') {
                            TokenKind::EqEq
                        } else {
                            TokenKind::Assign
                        }
                    }
                    '!' => {
                        if self.eat('=') {
                            TokenKind::NotEq
                        } else {
                            TokenKind::Not
                        }
                    }
                    '<' => {
                        if self.eat('=') {
                            TokenKind::Le
                        } else if self.eat('<') {
                            TokenKind::Shl
                        } else {
                            TokenKind::Lt
                        }
                    }
                    '>' => {
                        if self.eat('=') {
                            TokenKind::Ge
                        } else if self.eat('>') {
                            TokenKind::Shr
                        } else {
                            TokenKind::Gt
                        }
                    }
                    '&' => {
                        if self.eat('&') {
                            TokenKind::AndAnd
                        } else {
                            TokenKind::Amp
                        }
                    }
                    '|' => {
                        if self.eat('|') {
                            TokenKind::OrOr
                        } else {
                            TokenKind::Pipe
                        }
                    }
                    other => {
                        return Err(LangError::new(
                            pos.line,
                            pos.column,
                            format!("unexpected character `{other}`"),
                        ))
                    }
                }
            }
        };
        Ok(Token { kind, pos })
    }

    fn number(&mut self, pos: Pos) -> Result<TokenKind, LangError> {
        let mut text = String::new();
        let mut is_hex = false;
        text.push(self.bump().expect("digit"));
        if text == "0" && (self.peek() == Some('x') || self.peek() == Some('X')) {
            self.bump();
            is_hex = true;
            text.clear();
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_hexdigit() && (is_hex || c.is_ascii_digit()) {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        let radix = if is_hex { 16 } else { 10 };
        match i64::from_str_radix(&text, radix) {
            // Accept anything representable in 32 bits (values above
            // i32::MAX wrap, so `0xFFFFFFFF` means -1).
            Ok(v) if (0..=u32::MAX as i64).contains(&v) => Ok(TokenKind::Int(v as i32)),
            _ => Err(LangError::new(
                pos.line,
                pos.column,
                format!("integer literal `{text}` out of range"),
            )),
        }
    }

    fn char_literal(&mut self, pos: Pos) -> Result<TokenKind, LangError> {
        self.bump(); // opening quote
        let err = |msg: &str| LangError::new(pos.line, pos.column, msg.to_string());
        let c = self.bump().ok_or_else(|| err("unterminated character literal"))?;
        let value = if c == '\\' {
            let esc = self.bump().ok_or_else(|| err("unterminated character literal"))?;
            match esc {
                'n' => '\n' as i32,
                't' => '\t' as i32,
                '0' => 0,
                '\\' => '\\' as i32,
                '\'' => '\'' as i32,
                other => {
                    return Err(err(&format!("unknown escape `\\{other}`")));
                }
            }
        } else {
            c as i32
        };
        if !self.eat('\'') {
            return Err(err("unterminated character literal"));
        }
        Ok(TokenKind::Int(value))
    }

    fn ident_or_keyword(&mut self) -> TokenKind {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match text.as_str() {
            "fn" => TokenKind::Fn,
            "var" => TokenKind::Var,
            "int" => TokenKind::IntType,
            "if" => TokenKind::If,
            "else" => TokenKind::Else,
            "while" => TokenKind::While,
            "for" => TokenKind::For,
            "return" => TokenKind::Return,
            "break" => TokenKind::Break,
            "continue" => TokenKind::Continue,
            _ => TokenKind::Ident(text),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<TokenKind> {
        Lexer::tokenize(source)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_declaration() {
        assert_eq!(
            kinds("var x: int = 42;"),
            vec![
                TokenKind::Var,
                TokenKind::Ident("x".into()),
                TokenKind::Colon,
                TokenKind::IntType,
                TokenKind::Assign,
                TokenKind::Int(42),
                TokenKind::Semicolon,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_operators() {
        assert_eq!(
            kinds("<= >= == != << >> && || -> & | ^ !"),
            vec![
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::Shl,
                TokenKind::Shr,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Arrow,
                TokenKind::Amp,
                TokenKind::Pipe,
                TokenKind::Caret,
                TokenKind::Not,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_hex_and_char() {
        assert_eq!(
            kinds("0x1F 'a' '\\n' '\\0'"),
            vec![
                TokenKind::Int(31),
                TokenKind::Int(97),
                TokenKind::Int(10),
                TokenKind::Int(0),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn skips_comments() {
        assert_eq!(
            kinds("1 // line\n 2 /* block\n spanning */ 3"),
            vec![
                TokenKind::Int(1),
                TokenKind::Int(2),
                TokenKind::Int(3),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unterminated_comment_is_error() {
        assert!(Lexer::tokenize("/* never closed").is_err());
    }

    #[test]
    fn tracks_positions() {
        let tokens = Lexer::tokenize("a\n  b").unwrap();
        assert_eq!(tokens[0].pos, Pos { line: 1, column: 1 });
        assert_eq!(tokens[1].pos, Pos { line: 2, column: 3 });
    }

    #[test]
    fn rejects_unknown_char() {
        let err = Lexer::tokenize("a $ b").unwrap_err();
        assert!(err.to_string().contains("unexpected character"));
    }

    #[test]
    fn keywords_vs_identifiers() {
        assert_eq!(
            kinds("iff fn_x fn"),
            vec![
                TokenKind::Ident("iff".into()),
                TokenKind::Ident("fn_x".into()),
                TokenKind::Fn,
                TokenKind::Eof
            ]
        );
    }
}
