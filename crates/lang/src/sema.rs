//! Semantic checks for MiniC.
//!
//! Everything in MiniC is a 32-bit word, so there is no type inference —
//! the checker enforces name resolution, arity, lvalue validity, and
//! structural rules (`break` inside loops, a `main` entry point, the
//! four-register argument limit of the calling convention).

use std::collections::{HashMap, HashSet};

use crate::ast::{Block, Expr, Func, LValue, Module, Stmt, UnOp};
use crate::lexer::Pos;
use crate::LangError;

/// Maximum call arguments (they travel in `a0`–`a3`).
pub const MAX_ARGS: usize = 4;

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum VarKind {
    Scalar,
    Array,
}

/// Checks a parsed module.
///
/// # Errors
///
/// Returns the first semantic error: duplicate or missing definitions,
/// bad call arity, invalid lvalues, `break`/`continue` outside loops, or a
/// missing `main`.
pub fn check(module: &Module) -> Result<(), LangError> {
    let mut checker = Checker {
        funcs: HashMap::new(),
        globals: HashMap::new(),
        scopes: Vec::new(),
        loop_depth: 0,
    };
    checker.module(module)
}

struct Checker {
    funcs: HashMap<String, usize>, // name -> arity
    globals: HashMap<String, VarKind>,
    scopes: Vec<HashMap<String, VarKind>>,
    loop_depth: usize,
}

fn err(pos: Pos, message: impl Into<String>) -> LangError {
    LangError::new(pos.line, pos.column, message)
}

impl Checker {
    fn module(&mut self, module: &Module) -> Result<(), LangError> {
        for global in &module.globals {
            if self.globals.insert(
                global.name.clone(),
                if global.array_len.is_some() {
                    VarKind::Array
                } else {
                    VarKind::Scalar
                },
            )
            .is_some()
            {
                return Err(err(global.pos, format!("duplicate global `{}`", global.name)));
            }
        }
        for func in &module.funcs {
            if self.globals.contains_key(&func.name) {
                return Err(err(
                    func.pos,
                    format!("`{}` is defined as both a global and a function", func.name),
                ));
            }
            if self.funcs.insert(func.name.clone(), func.params.len()).is_some() {
                return Err(err(func.pos, format!("duplicate function `{}`", func.name)));
            }
            if func.params.len() > MAX_ARGS {
                return Err(err(
                    func.pos,
                    format!(
                        "function `{}` has {} parameters; at most {MAX_ARGS} are supported",
                        func.name,
                        func.params.len()
                    ),
                ));
            }
        }
        match self.funcs.get("main") {
            Some(0) => {}
            Some(_) => {
                let main = module.func("main").expect("main exists");
                return Err(err(main.pos, "`main` must take no parameters"));
            }
            None => {
                return Err(LangError::internal("program has no `main` function"));
            }
        }
        for func in &module.funcs {
            self.func(func)?;
        }
        Ok(())
    }

    fn func(&mut self, func: &Func) -> Result<(), LangError> {
        self.scopes.clear();
        self.loop_depth = 0;
        let mut top = HashMap::new();
        let mut seen = HashSet::new();
        for param in &func.params {
            if !seen.insert(param.clone()) {
                return Err(err(
                    func.pos,
                    format!("duplicate parameter `{param}` in `{}`", func.name),
                ));
            }
            top.insert(param.clone(), VarKind::Scalar);
        }
        self.scopes.push(top);
        self.block_in_current_scope(&func.body)?;
        self.scopes.pop();
        Ok(())
    }

    fn lookup(&self, name: &str) -> Option<VarKind> {
        for scope in self.scopes.iter().rev() {
            if let Some(&kind) = scope.get(name) {
                return Some(kind);
            }
        }
        self.globals.get(name).copied()
    }

    fn block(&mut self, block: &Block) -> Result<(), LangError> {
        self.scopes.push(HashMap::new());
        self.block_in_current_scope(block)?;
        self.scopes.pop();
        Ok(())
    }

    fn block_in_current_scope(&mut self, block: &Block) -> Result<(), LangError> {
        for stmt in &block.stmts {
            self.stmt(stmt)?;
        }
        Ok(())
    }

    fn declare(&mut self, name: &str, kind: VarKind, pos: Pos) -> Result<(), LangError> {
        if self.funcs.contains_key(name) {
            return Err(err(pos, format!("`{name}` is already a function name")));
        }
        let scope = self.scopes.last_mut().expect("inside a function");
        if scope.insert(name.to_string(), kind).is_some() {
            return Err(err(pos, format!("duplicate variable `{name}` in this scope")));
        }
        Ok(())
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<(), LangError> {
        match stmt {
            Stmt::VarDecl {
                name,
                array_len,
                init,
                pos,
            } => {
                // The initializer may not reference the new variable.
                if let Some(init) = init {
                    self.expr(init)?;
                }
                let kind = if array_len.is_some() {
                    VarKind::Array
                } else {
                    VarKind::Scalar
                };
                self.declare(name, kind, *pos)
            }
            Stmt::Assign { target, value, pos } => {
                match target {
                    LValue::Var(name) => match self.lookup(name) {
                        Some(VarKind::Scalar) => {}
                        Some(VarKind::Array) => {
                            return Err(err(*pos, format!("cannot assign to array `{name}`")));
                        }
                        None => {
                            return Err(err(*pos, format!("undefined variable `{name}`")));
                        }
                    },
                    LValue::Index { base, index } => {
                        self.expr(base)?;
                        self.expr(index)?;
                    }
                }
                self.expr(value)
            }
            Stmt::Expr(expr) => {
                if !matches!(expr, Expr::Call { .. }) {
                    let pos = expr.pos();
                    return Err(err(pos, "expression statement must be a call"));
                }
                self.expr(expr)
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                self.expr(cond)?;
                self.block(then_blk)?;
                if let Some(else_blk) = else_blk {
                    self.block(else_blk)?;
                }
                Ok(())
            }
            Stmt::While { cond, body, .. } => {
                self.expr(cond)?;
                self.loop_depth += 1;
                let result = self.block(body);
                self.loop_depth -= 1;
                result
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                // The for header introduces its own scope (`var i` in init).
                self.scopes.push(HashMap::new());
                if let Some(init) = init {
                    self.stmt(init)?;
                }
                if let Some(cond) = cond {
                    self.expr(cond)?;
                }
                if let Some(step) = step {
                    self.stmt(step)?;
                }
                self.loop_depth += 1;
                let result = self.block(body);
                self.loop_depth -= 1;
                self.scopes.pop();
                result
            }
            Stmt::Break(pos) => {
                if self.loop_depth == 0 {
                    Err(err(*pos, "`break` outside of a loop"))
                } else {
                    Ok(())
                }
            }
            Stmt::Continue(pos) => {
                if self.loop_depth == 0 {
                    Err(err(*pos, "`continue` outside of a loop"))
                } else {
                    Ok(())
                }
            }
            Stmt::Return(value, _) => {
                if let Some(value) = value {
                    self.expr(value)?;
                }
                Ok(())
            }
            Stmt::Block(block) => self.block(block),
        }
    }

    fn expr(&mut self, expr: &Expr) -> Result<(), LangError> {
        match expr {
            Expr::Int(..) => Ok(()),
            Expr::Var(name, pos) => {
                if self.lookup(name).is_some() {
                    Ok(())
                } else if self.funcs.contains_key(name) {
                    Err(err(
                        *pos,
                        format!("function `{name}` used as a value; take its address with `&{name}`"),
                    ))
                } else {
                    Err(err(*pos, format!("undefined variable `{name}`")))
                }
            }
            Expr::Index { base, index, .. } => {
                self.expr(base)?;
                self.expr(index)
            }
            Expr::Unary { op, expr, pos } => match op {
                UnOp::AddrOf => {
                    let Expr::Var(name, _) = expr.as_ref() else {
                        return Err(err(*pos, "`&` takes a function name"));
                    };
                    if self.funcs.contains_key(name) {
                        Ok(())
                    } else {
                        Err(err(*pos, format!("`&{name}`: no such function")))
                    }
                }
                UnOp::Neg | UnOp::Not => self.expr(expr),
            },
            Expr::Binary { lhs, rhs, .. } => {
                self.expr(lhs)?;
                self.expr(rhs)
            }
            Expr::Call { name, args, pos } => {
                if args.len() > MAX_ARGS {
                    return Err(err(
                        *pos,
                        format!("call passes {} arguments; at most {MAX_ARGS} are supported", args.len()),
                    ));
                }
                if let Some(&arity) = self.funcs.get(name) {
                    if args.len() != arity {
                        return Err(err(
                            *pos,
                            format!(
                                "`{name}` expects {arity} argument(s), got {}",
                                args.len()
                            ),
                        ));
                    }
                } else {
                    match self.lookup(name) {
                        Some(VarKind::Scalar) => {} // indirect call
                        Some(VarKind::Array) => {
                            return Err(err(
                                *pos,
                                format!("cannot call array `{name}`"),
                            ));
                        }
                        None => {
                            return Err(err(*pos, format!("undefined function `{name}`")));
                        }
                    }
                }
                for arg in args {
                    self.expr(arg)?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn check_src(source: &str) -> Result<(), LangError> {
        check(&parse(source).unwrap())
    }

    #[test]
    fn accepts_valid_program() {
        check_src(
            r#"
            var g: int = 1;
            var a: int[4];
            fn helper(x: int) -> int { return x + g; }
            fn main() -> int {
                var s: int = 0;
                for (var i: int = 0; i < 4; i = i + 1) {
                    a[i] = helper(i);
                    s = s + a[i];
                }
                var f: int = &helper;
                return f(s);
            }
            "#,
        )
        .unwrap();
    }

    #[test]
    fn missing_main() {
        let result = check_src("fn f() -> int { return 0; }");
        assert!(result.unwrap_err().to_string().contains("no `main`"));
    }

    #[test]
    fn main_with_params_rejected() {
        let result = check_src("fn main(x: int) -> int { return x; }");
        assert!(result.unwrap_err().to_string().contains("no parameters"));
    }

    #[test]
    fn undefined_variable() {
        let result = check_src("fn main() -> int { return nope; }");
        assert!(result.unwrap_err().to_string().contains("undefined variable"));
    }

    #[test]
    fn undefined_function() {
        let result = check_src("fn main() -> int { return nope(); }");
        assert!(result.unwrap_err().to_string().contains("undefined function"));
    }

    #[test]
    fn arity_mismatch() {
        let result =
            check_src("fn f(a: int) -> int { return a; } fn main() -> int { return f(1, 2); }");
        assert!(result.unwrap_err().to_string().contains("expects 1 argument"));
    }

    #[test]
    fn too_many_args() {
        let result = check_src(
            "fn f(a: int, b: int, c: int, d: int) -> int { return a; } \
             fn main() -> int { var p: int = &f; return p(1,2,3,4,5); }",
        );
        assert!(result.unwrap_err().to_string().contains("at most 4"));
    }

    #[test]
    fn too_many_params() {
        let result = check_src(
            "fn f(a: int, b: int, c: int, d: int, e: int) -> int { return a; } \
             fn main() -> int { return 0; }",
        );
        assert!(result.unwrap_err().to_string().contains("at most 4"));
    }

    #[test]
    fn break_outside_loop() {
        let result = check_src("fn main() -> int { break; return 0; }");
        assert!(result.unwrap_err().to_string().contains("outside of a loop"));
    }

    #[test]
    fn continue_inside_loop_ok() {
        check_src("fn main() -> int { while (0) { continue; } return 0; }").unwrap();
    }

    #[test]
    fn duplicate_variable_in_scope() {
        let result = check_src("fn main() -> int { var x: int; var x: int; return 0; }");
        assert!(result.unwrap_err().to_string().contains("duplicate variable"));
    }

    #[test]
    fn shadowing_in_nested_scope_ok() {
        check_src("fn main() -> int { var x: int = 1; { var x: int = 2; } return x; }").unwrap();
    }

    #[test]
    fn assign_to_array_rejected() {
        let result = check_src("var a: int[2]; fn main() -> int { a = 1; return 0; }");
        assert!(result.unwrap_err().to_string().contains("cannot assign to array"));
    }

    #[test]
    fn function_as_value_needs_addrof() {
        let result =
            check_src("fn f() -> int { return 0; } fn main() -> int { return f; }");
        assert!(result.unwrap_err().to_string().contains("take its address"));
    }

    #[test]
    fn addrof_non_function_rejected() {
        let result = check_src("fn main() -> int { var x: int; return &x; }");
        assert!(result.unwrap_err().to_string().contains("no such function"));
    }

    #[test]
    fn expression_statement_must_be_call() {
        let result = check_src("fn main() -> int { 1 + 2; return 0; }");
        assert!(result.unwrap_err().to_string().contains("must be a call"));
    }

    #[test]
    fn duplicate_global() {
        let result = check_src("var g: int; var g: int; fn main() -> int { return 0; }");
        assert!(result.unwrap_err().to_string().contains("duplicate global"));
    }

    #[test]
    fn global_function_clash() {
        let result = check_src("var f: int; fn f() -> int { return 0; } fn main() -> int { return 0; }");
        assert!(result.unwrap_err().to_string().contains("both a global and a function"));
    }

    #[test]
    fn calling_array_rejected() {
        let result = check_src("var a: int[2]; fn main() -> int { return a(); }");
        assert!(result.unwrap_err().to_string().contains("cannot call array"));
    }

    #[test]
    fn indirect_call_through_scalar_ok() {
        check_src(
            "fn f() -> int { return 7; } fn main() -> int { var p: int = &f; return p(); }",
        )
        .unwrap();
    }
}
