//! Recursive-descent parser for MiniC.

use crate::ast::{BinOp, Block, Expr, Func, Global, LValue, Module, Stmt, UnOp};
use crate::lexer::{Lexer, Pos, Token, TokenKind};
use crate::LangError;

/// Parses MiniC source into a [`Module`].
///
/// # Errors
///
/// Returns the first syntax error encountered.
///
/// # Example
///
/// ```
/// let module = clfp_lang::parse("fn main() -> int { return 0; }")?;
/// assert_eq!(module.funcs.len(), 1);
/// # Ok::<(), clfp_lang::LangError>(())
/// ```
pub fn parse(source: &str) -> Result<Module, LangError> {
    let tokens = Lexer::tokenize(source)?;
    Parser { tokens, index: 0 }.module()
}

struct Parser {
    tokens: Vec<Token>,
    index: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.index].kind
    }

    fn pos(&self) -> Pos {
        self.tokens[self.index].pos
    }

    fn bump(&mut self) -> Token {
        let token = self.tokens[self.index].clone();
        if self.index + 1 < self.tokens.len() {
            self.index += 1;
        }
        token
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, LangError> {
        if self.peek() == kind {
            Ok(self.bump())
        } else {
            Err(self.error(format!("expected {kind}, found {}", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Pos), LangError> {
        let pos = self.pos();
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok((name, pos))
            }
            other => Err(self.error(format!("expected identifier, found {other}"))),
        }
    }

    fn error(&self, message: String) -> LangError {
        let pos = self.pos();
        LangError::new(pos.line, pos.column, message)
    }

    // ---- declarations ---------------------------------------------------

    fn module(&mut self) -> Result<Module, LangError> {
        let mut module = Module::default();
        loop {
            match self.peek() {
                TokenKind::Eof => return Ok(module),
                TokenKind::Var => module.globals.push(self.global()?),
                TokenKind::Fn => module.funcs.push(self.func()?),
                other => {
                    return Err(self.error(format!(
                        "expected `fn` or `var` at top level, found {other}"
                    )))
                }
            }
        }
    }

    fn global(&mut self) -> Result<Global, LangError> {
        self.expect(&TokenKind::Var)?;
        let (name, pos) = self.expect_ident()?;
        self.expect(&TokenKind::Colon)?;
        self.expect(&TokenKind::IntType)?;
        let array_len = self.array_suffix()?;
        let mut init = Vec::new();
        if self.eat(&TokenKind::Assign) {
            if self.eat(&TokenKind::LBrace) {
                if array_len.is_none() {
                    return Err(self.error("scalar globals take a single initializer".into()));
                }
                loop {
                    init.push(self.const_int()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RBrace)?;
            } else {
                init.push(self.const_int()?);
            }
        }
        if let Some(len) = array_len {
            if init.len() as u32 > len {
                return Err(self.error(format!(
                    "array `{name}` has {} initializers but length {len}",
                    init.len()
                )));
            }
        }
        self.expect(&TokenKind::Semicolon)?;
        Ok(Global {
            name,
            array_len,
            init,
            pos,
        })
    }

    fn array_suffix(&mut self) -> Result<Option<u32>, LangError> {
        if !self.eat(&TokenKind::LBracket) {
            return Ok(None);
        }
        let len = self.const_int()?;
        self.expect(&TokenKind::RBracket)?;
        if len <= 0 {
            return Err(self.error(format!("array length must be positive, got {len}")));
        }
        Ok(Some(len as u32))
    }

    /// A constant integer: a literal with optional leading minus.
    fn const_int(&mut self) -> Result<i32, LangError> {
        let negate = self.eat(&TokenKind::Minus);
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(if negate { v.wrapping_neg() } else { v })
            }
            other => Err(self.error(format!("expected integer constant, found {other}"))),
        }
    }

    fn func(&mut self) -> Result<Func, LangError> {
        self.expect(&TokenKind::Fn)?;
        let (name, pos) = self.expect_ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if self.peek() != &TokenKind::RParen {
            loop {
                let (param, _) = self.expect_ident()?;
                self.expect(&TokenKind::Colon)?;
                self.expect(&TokenKind::IntType)?;
                params.push(param);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        if self.eat(&TokenKind::Arrow) {
            self.expect(&TokenKind::IntType)?;
        }
        let body = self.block()?;
        Ok(Func {
            name,
            params,
            body,
            pos,
        })
    }

    // ---- statements -----------------------------------------------------

    fn block(&mut self) -> Result<Block, LangError> {
        self.expect(&TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != &TokenKind::RBrace {
            if self.peek() == &TokenKind::Eof {
                return Err(self.error("unexpected end of input in block".into()));
            }
            stmts.push(self.stmt()?);
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(Block { stmts })
    }

    fn stmt(&mut self) -> Result<Stmt, LangError> {
        match self.peek() {
            TokenKind::Var => {
                let stmt = self.var_decl()?;
                self.expect(&TokenKind::Semicolon)?;
                Ok(stmt)
            }
            TokenKind::If => self.if_stmt(),
            TokenKind::While => {
                let pos = self.pos();
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body, pos })
            }
            TokenKind::For => self.for_stmt(),
            TokenKind::Return => {
                let pos = self.pos();
                self.bump();
                let value = if self.peek() == &TokenKind::Semicolon {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&TokenKind::Semicolon)?;
                Ok(Stmt::Return(value, pos))
            }
            TokenKind::Break => {
                let pos = self.pos();
                self.bump();
                self.expect(&TokenKind::Semicolon)?;
                Ok(Stmt::Break(pos))
            }
            TokenKind::Continue => {
                let pos = self.pos();
                self.bump();
                self.expect(&TokenKind::Semicolon)?;
                Ok(Stmt::Continue(pos))
            }
            TokenKind::LBrace => Ok(Stmt::Block(self.block()?)),
            _ => {
                let stmt = self.assign_or_expr()?;
                self.expect(&TokenKind::Semicolon)?;
                Ok(stmt)
            }
        }
    }

    fn var_decl(&mut self) -> Result<Stmt, LangError> {
        self.expect(&TokenKind::Var)?;
        let (name, pos) = self.expect_ident()?;
        self.expect(&TokenKind::Colon)?;
        self.expect(&TokenKind::IntType)?;
        let array_len = self.array_suffix()?;
        let init = if self.eat(&TokenKind::Assign) {
            if array_len.is_some() {
                return Err(self.error("local arrays cannot have initializers".into()));
            }
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Stmt::VarDecl {
            name,
            array_len,
            init,
            pos,
        })
    }

    fn if_stmt(&mut self) -> Result<Stmt, LangError> {
        let pos = self.pos();
        self.expect(&TokenKind::If)?;
        self.expect(&TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(&TokenKind::RParen)?;
        let then_blk = self.block()?;
        let else_blk = if self.eat(&TokenKind::Else) {
            if self.peek() == &TokenKind::If {
                // `else if` chains become a nested block.
                let nested = self.if_stmt()?;
                Some(Block {
                    stmts: vec![nested],
                })
            } else {
                Some(self.block()?)
            }
        } else {
            None
        };
        Ok(Stmt::If {
            cond,
            then_blk,
            else_blk,
            pos,
        })
    }

    fn for_stmt(&mut self) -> Result<Stmt, LangError> {
        let pos = self.pos();
        self.expect(&TokenKind::For)?;
        self.expect(&TokenKind::LParen)?;
        let init = if self.peek() == &TokenKind::Semicolon {
            None
        } else if self.peek() == &TokenKind::Var {
            Some(Box::new(self.var_decl()?))
        } else {
            Some(Box::new(self.assign_or_expr()?))
        };
        self.expect(&TokenKind::Semicolon)?;
        let cond = if self.peek() == &TokenKind::Semicolon {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(&TokenKind::Semicolon)?;
        let step = if self.peek() == &TokenKind::RParen {
            None
        } else {
            Some(Box::new(self.assign_or_expr()?))
        };
        self.expect(&TokenKind::RParen)?;
        let body = self.block()?;
        Ok(Stmt::For {
            init,
            cond,
            step,
            body,
            pos,
        })
    }

    /// Parses `lvalue = expr` or a bare expression (without the trailing
    /// semicolon, which `for` headers do not have).
    fn assign_or_expr(&mut self) -> Result<Stmt, LangError> {
        let pos = self.pos();
        let expr = self.expr()?;
        if self.eat(&TokenKind::Assign) {
            let target = match expr {
                Expr::Var(name, _) => LValue::Var(name),
                Expr::Index { base, index, .. } => LValue::Index { base, index },
                other => {
                    let at = other.pos();
                    return Err(LangError::new(
                        at.line,
                        at.column,
                        "invalid assignment target",
                    ));
                }
            };
            let value = self.expr()?;
            Ok(Stmt::Assign { target, value, pos })
        } else {
            Ok(Stmt::Expr(expr))
        }
    }

    // ---- expressions ----------------------------------------------------

    fn expr(&mut self) -> Result<Expr, LangError> {
        self.binary_expr(0)
    }

    /// Precedence climbing. Levels, loosest first:
    /// `||`, `&&`, `|`, `^`, `&`, `== !=`, `< <= > >=`, `<< >>`, `+ -`,
    /// `* / %`.
    fn binary_expr(&mut self, min_level: u8) -> Result<Expr, LangError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let (op, level) = match self.peek() {
                TokenKind::OrOr => (BinOp::LogOr, 0),
                TokenKind::AndAnd => (BinOp::LogAnd, 1),
                TokenKind::Pipe => (BinOp::BitOr, 2),
                TokenKind::Caret => (BinOp::BitXor, 3),
                TokenKind::Amp => (BinOp::BitAnd, 4),
                TokenKind::EqEq => (BinOp::Eq, 5),
                TokenKind::NotEq => (BinOp::Ne, 5),
                TokenKind::Lt => (BinOp::Lt, 6),
                TokenKind::Le => (BinOp::Le, 6),
                TokenKind::Gt => (BinOp::Gt, 6),
                TokenKind::Ge => (BinOp::Ge, 6),
                TokenKind::Shl => (BinOp::Shl, 7),
                TokenKind::Shr => (BinOp::Shr, 7),
                TokenKind::Plus => (BinOp::Add, 8),
                TokenKind::Minus => (BinOp::Sub, 8),
                TokenKind::Star => (BinOp::Mul, 9),
                TokenKind::Slash => (BinOp::Div, 9),
                TokenKind::Percent => (BinOp::Rem, 9),
                _ => break,
            };
            if level < min_level {
                break;
            }
            let pos = self.pos();
            self.bump();
            let rhs = self.binary_expr(level + 1)?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, LangError> {
        let pos = self.pos();
        match self.peek() {
            TokenKind::Minus => {
                self.bump();
                let expr = self.unary_expr()?;
                // Fold negation of literals so `-5` is a constant.
                if let Expr::Int(v, _) = expr {
                    return Ok(Expr::Int(v.wrapping_neg(), pos));
                }
                Ok(Expr::Unary {
                    op: UnOp::Neg,
                    expr: Box::new(expr),
                    pos,
                })
            }
            TokenKind::Not => {
                self.bump();
                let expr = self.unary_expr()?;
                Ok(Expr::Unary {
                    op: UnOp::Not,
                    expr: Box::new(expr),
                    pos,
                })
            }
            TokenKind::Amp => {
                self.bump();
                let (name, name_pos) = self.expect_ident()?;
                Ok(Expr::Unary {
                    op: UnOp::AddrOf,
                    expr: Box::new(Expr::Var(name, name_pos)),
                    pos,
                })
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, LangError> {
        let mut expr = self.primary_expr()?;
        loop {
            if self.peek() == &TokenKind::LBracket {
                let pos = self.pos();
                self.bump();
                let index = self.expr()?;
                self.expect(&TokenKind::RBracket)?;
                expr = Expr::Index {
                    base: Box::new(expr),
                    index: Box::new(index),
                    pos,
                };
            } else {
                break;
            }
        }
        Ok(expr)
    }

    fn primary_expr(&mut self) -> Result<Expr, LangError> {
        let pos = self.pos();
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Int(v, pos))
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.eat(&TokenKind::LParen) {
                    let mut args = Vec::new();
                    if self.peek() != &TokenKind::RParen {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                    Ok(Expr::Call { name, args, pos })
                } else {
                    Ok(Expr::Var(name, pos))
                }
            }
            TokenKind::LParen => {
                self.bump();
                let expr = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(expr)
            }
            other => Err(self.error(format!("expected expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_function_with_params() {
        let module = parse("fn add(a: int, b: int) -> int { return a + b; }").unwrap();
        assert_eq!(module.funcs.len(), 1);
        let func = &module.funcs[0];
        assert_eq!(func.name, "add");
        assert_eq!(func.params, vec!["a", "b"]);
        assert_eq!(func.body.stmts.len(), 1);
    }

    #[test]
    fn parses_globals() {
        let module = parse("var g: int = -3; var a: int[4] = {1, 2}; var b: int;").unwrap();
        assert_eq!(module.globals.len(), 3);
        assert_eq!(module.globals[0].init, vec![-3]);
        assert_eq!(module.globals[1].array_len, Some(4));
        assert_eq!(module.globals[1].init, vec![1, 2]);
        assert!(module.globals[2].init.is_empty());
    }

    #[test]
    fn precedence() {
        let module = parse("fn f() -> int { return 1 + 2 * 3 < 4 && 5 == 6; }").unwrap();
        let Stmt::Return(Some(expr), _) = &module.funcs[0].body.stmts[0] else {
            panic!("expected return");
        };
        // Top level must be `&&`.
        let Expr::Binary { op: BinOp::LogAnd, lhs, rhs, .. } = expr else {
            panic!("expected &&, got {expr:?}");
        };
        assert!(matches!(**lhs, Expr::Binary { op: BinOp::Lt, .. }));
        assert!(matches!(**rhs, Expr::Binary { op: BinOp::Eq, .. }));
    }

    #[test]
    fn left_associativity() {
        let module = parse("fn f() -> int { return 10 - 3 - 2; }").unwrap();
        let Stmt::Return(Some(Expr::Binary { op: BinOp::Sub, lhs, .. }), _) =
            &module.funcs[0].body.stmts[0]
        else {
            panic!("expected return of subtraction");
        };
        assert!(matches!(**lhs, Expr::Binary { op: BinOp::Sub, .. }));
    }

    #[test]
    fn parses_control_flow() {
        let source = r#"
            fn f(n: int) -> int {
                var s: int = 0;
                for (var i: int = 0; i < n; i = i + 1) {
                    if (i % 2 == 0) { s = s + i; } else if (i > 10) { break; } else { continue; }
                }
                while (s > 100) { s = s - 1; }
                return s;
            }
        "#;
        let module = parse(source).unwrap();
        assert_eq!(module.funcs[0].body.stmts.len(), 4);
        assert!(matches!(module.funcs[0].body.stmts[1], Stmt::For { .. }));
        assert!(matches!(module.funcs[0].body.stmts[2], Stmt::While { .. }));
    }

    #[test]
    fn parses_indexing_and_calls() {
        let module =
            parse("fn f() -> int { return a[i + 1] + g(x, y[2]); }").unwrap();
        let Stmt::Return(Some(Expr::Binary { lhs, rhs, .. }), _) = &module.funcs[0].body.stmts[0]
        else {
            panic!();
        };
        assert!(matches!(**lhs, Expr::Index { .. }));
        assert!(matches!(**rhs, Expr::Call { .. }));
    }

    #[test]
    fn parses_function_address() {
        let module = parse("fn f() -> int { var h: int = &f; return h(); }").unwrap();
        let Stmt::VarDecl { init: Some(init), .. } = &module.funcs[0].body.stmts[0] else {
            panic!();
        };
        assert!(matches!(init, Expr::Unary { op: UnOp::AddrOf, .. }));
    }

    #[test]
    fn assignment_targets() {
        let module = parse("fn f() -> int { x = 1; a[0] = 2; p[i][j] = 3; return 0; }").unwrap();
        assert!(matches!(
            module.funcs[0].body.stmts[0],
            Stmt::Assign { target: LValue::Var(_), .. }
        ));
        assert!(matches!(
            module.funcs[0].body.stmts[1],
            Stmt::Assign { target: LValue::Index { .. }, .. }
        ));
        assert!(matches!(
            module.funcs[0].body.stmts[2],
            Stmt::Assign { target: LValue::Index { .. }, .. }
        ));
    }

    #[test]
    fn invalid_assignment_target() {
        let err = parse("fn f() -> int { 1 + 2 = 3; return 0; }").unwrap_err();
        assert!(err.to_string().contains("invalid assignment target"));
    }

    #[test]
    fn missing_semicolon() {
        let err = parse("fn f() -> int { return 0 }").unwrap_err();
        assert!(err.to_string().contains("expected `;`"));
    }

    #[test]
    fn empty_for_header() {
        let module = parse("fn f() -> int { for (;;) { break; } return 0; }").unwrap();
        let Stmt::For { init, cond, step, .. } = &module.funcs[0].body.stmts[0] else {
            panic!();
        };
        assert!(init.is_none());
        assert!(cond.is_none());
        assert!(step.is_none());
    }

    #[test]
    fn negative_literal_folds() {
        let module = parse("fn f() -> int { return -5; }").unwrap();
        assert!(matches!(
            module.funcs[0].body.stmts[0],
            Stmt::Return(Some(Expr::Int(-5, _)), _)
        ));
    }

    #[test]
    fn top_level_junk_is_error() {
        assert!(parse("int x;").is_err());
    }

    #[test]
    fn array_with_too_many_inits() {
        let err = parse("var a: int[2] = {1,2,3};").unwrap_err();
        assert!(err.to_string().contains("initializers"));
    }
}
