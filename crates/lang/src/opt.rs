//! AST-level optimizer: constant folding, algebraic identities, and dead
//! branch elimination.
//!
//! The transformations preserve MiniC semantics exactly (wrapping
//! arithmetic, division-by-zero-is-zero, short-circuit evaluation) — the
//! differential test suite compiles optimized programs and checks them
//! against the unoptimized reference interpreter. Expressions are only
//! *discarded* when they are pure (no calls), so side effects always
//! survive.

use crate::ast::{BinOp, Block, Expr, Func, Global, LValue, Module, Stmt, UnOp};
use crate::interp::eval_binop;

/// Optimizes a module: returns a semantically identical module with
/// constants folded, algebraic identities simplified, and
/// statically-decided `if`/`while` statements pruned.
pub fn optimize(module: &Module) -> Module {
    Module {
        globals: module.globals.iter().map(Global::clone).collect(),
        funcs: module.funcs.iter().map(opt_func).collect(),
    }
}

fn opt_func(func: &Func) -> Func {
    Func {
        name: func.name.clone(),
        params: func.params.clone(),
        body: opt_block(&func.body),
        pos: func.pos,
    }
}

fn opt_block(block: &Block) -> Block {
    let mut stmts = Vec::with_capacity(block.stmts.len());
    for stmt in &block.stmts {
        if let Some(stmt) = opt_stmt(stmt) { stmts.push(stmt) }
    }
    Block { stmts }
}

/// Optimizes one statement; `None` means the statement disappeared.
fn opt_stmt(stmt: &Stmt) -> Option<Stmt> {
    match stmt {
        Stmt::VarDecl {
            name,
            array_len,
            init,
            pos,
        } => Some(Stmt::VarDecl {
            name: name.clone(),
            array_len: *array_len,
            init: init.as_ref().map(opt_expr),
            pos: *pos,
        }),
        Stmt::Assign { target, value, pos } => {
            let target = match target {
                LValue::Var(name) => LValue::Var(name.clone()),
                LValue::Index { base, index } => LValue::Index {
                    base: Box::new(opt_expr(base)),
                    index: Box::new(opt_expr(index)),
                },
            };
            Some(Stmt::Assign {
                target,
                value: opt_expr(value),
                pos: *pos,
            })
        }
        Stmt::Expr(expr) => Some(Stmt::Expr(opt_expr(expr))),
        Stmt::If {
            cond,
            then_blk,
            else_blk,
            pos,
        } => {
            let cond = opt_expr(cond);
            let then_blk = opt_block(then_blk);
            let else_blk = else_blk.as_ref().map(opt_block);
            // Statically decided branch: keep only the taken arm.
            if let Expr::Int(v, _) = cond {
                let taken = if v != 0 {
                    Some(then_blk)
                } else {
                    else_blk
                };
                return match taken {
                    Some(block) if !block.stmts.is_empty() => Some(Stmt::Block(block)),
                    _ => None,
                };
            }
            Some(Stmt::If {
                cond,
                then_blk,
                else_blk,
                pos: *pos,
            })
        }
        Stmt::While { cond, body, pos } => {
            let cond = opt_expr(cond);
            if matches!(cond, Expr::Int(0, _)) {
                return None; // never entered
            }
            Some(Stmt::While {
                cond,
                body: opt_block(body),
                pos: *pos,
            })
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            pos,
        } => {
            let init = init
                .as_deref()
                .and_then(opt_stmt)
                .map(Box::new);
            let cond = cond.as_ref().map(opt_expr);
            // `for (init; 0; ...)` still runs the initializer.
            if let Some(Expr::Int(0, _)) = cond {
                return init.map(|stmt| Stmt::Block(Block { stmts: vec![*stmt] }));
            }
            let step = step.as_deref().and_then(opt_stmt).map(Box::new);
            Some(Stmt::For {
                init,
                cond,
                step,
                body: opt_block(body),
                pos: *pos,
            })
        }
        Stmt::Break(pos) => Some(Stmt::Break(*pos)),
        Stmt::Continue(pos) => Some(Stmt::Continue(*pos)),
        Stmt::Return(value, pos) => Some(Stmt::Return(value.as_ref().map(opt_expr), *pos)),
        Stmt::Block(block) => {
            let block = opt_block(block);
            if block.stmts.is_empty() {
                None
            } else {
                Some(Stmt::Block(block))
            }
        }
    }
}

/// Whether evaluating the expression has no side effects (no calls).
fn is_pure(expr: &Expr) -> bool {
    match expr {
        Expr::Int(..) | Expr::Var(..) => true,
        Expr::Call { .. } => false,
        Expr::Index { base, index, .. } => is_pure(base) && is_pure(index),
        Expr::Unary { expr, .. } => is_pure(expr),
        Expr::Binary { lhs, rhs, .. } => is_pure(lhs) && is_pure(rhs),
    }
}

fn opt_expr(expr: &Expr) -> Expr {
    match expr {
        Expr::Int(..) | Expr::Var(..) => expr.clone(),
        Expr::Index { base, index, pos } => Expr::Index {
            base: Box::new(opt_expr(base)),
            index: Box::new(opt_expr(index)),
            pos: *pos,
        },
        Expr::Unary { op, expr: inner, pos } => {
            let inner = opt_expr(inner);
            match (op, &inner) {
                (UnOp::Neg, Expr::Int(v, _)) => Expr::Int(v.wrapping_neg(), *pos),
                (UnOp::Not, Expr::Int(v, _)) => Expr::Int((*v == 0) as i32, *pos),
                // --x == x
                (
                    UnOp::Neg,
                    Expr::Unary {
                        op: UnOp::Neg,
                        expr: innermost,
                        ..
                    },
                ) => (**innermost).clone(),
                _ => Expr::Unary {
                    op: *op,
                    expr: Box::new(inner),
                    pos: *pos,
                },
            }
        }
        Expr::Binary { op, lhs, rhs, pos } => {
            let lhs = opt_expr(lhs);
            let rhs = opt_expr(rhs);
            opt_binary(*op, lhs, rhs, *pos)
        }
        Expr::Call { name, args, pos } => Expr::Call {
            name: name.clone(),
            args: args.iter().map(opt_expr).collect(),
            pos: *pos,
        },
    }
}

fn opt_binary(op: BinOp, lhs: Expr, rhs: Expr, pos: crate::lexer::Pos) -> Expr {
    // Short-circuit operators: fold only forms that preserve evaluation
    // order and the 0/1 result.
    if op.is_logical() {
        match (&lhs, &rhs) {
            (Expr::Int(a, _), Expr::Int(b, _)) => {
                let value = match op {
                    BinOp::LogAnd => (*a != 0 && *b != 0) as i32,
                    _ => (*a != 0 || *b != 0) as i32,
                };
                return Expr::Int(value, pos);
            }
            // `0 && x` is 0 without evaluating x; `1 || x` is 1.
            (Expr::Int(0, _), _) if op == BinOp::LogAnd => return Expr::Int(0, pos),
            (Expr::Int(v, _), _) if op == BinOp::LogOr && *v != 0 => {
                return Expr::Int(1, pos)
            }
            _ => {}
        }
        return Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
            pos,
        };
    }

    // Full constant folding with the ISA's exact semantics.
    if let (Expr::Int(a, _), Expr::Int(b, _)) = (&lhs, &rhs) {
        return Expr::Int(eval_binop(op, *a, *b), pos);
    }

    // Algebraic identities. The non-constant operand is returned directly;
    // a *discarded* operand must be pure.
    let pure_lhs = is_pure(&lhs);
    let pure_rhs = is_pure(&rhs);
    match (op, &lhs, &rhs) {
        // x + 0, x - 0, x << 0, x >> 0, x | 0, x ^ 0  =>  x
        (BinOp::Add | BinOp::Sub | BinOp::Shl | BinOp::Shr | BinOp::BitOr | BinOp::BitXor,
            _, Expr::Int(0, _)) => lhs,
        // 0 + x, 0 | x, 0 ^ x  =>  x
        (BinOp::Add | BinOp::BitOr | BinOp::BitXor, Expr::Int(0, _), _) => rhs,
        // x * 1, x / 1  =>  x
        (BinOp::Mul | BinOp::Div, _, Expr::Int(1, _)) => lhs,
        // 1 * x  =>  x
        (BinOp::Mul, Expr::Int(1, _), _) => rhs,
        // x * 0 and x & 0  =>  0  (x must be pure)
        (BinOp::Mul | BinOp::BitAnd, _, Expr::Int(0, _)) if pure_lhs => Expr::Int(0, pos),
        (BinOp::Mul | BinOp::BitAnd, Expr::Int(0, _), _) if pure_rhs => Expr::Int(0, pos),
        // x % 1  =>  0 (pure x)
        (BinOp::Rem, _, Expr::Int(1, _)) if pure_lhs => Expr::Int(0, pos),
        _ => Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
            pos,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check, interpret, parse};

    fn opt(source: &str) -> Module {
        let module = parse(source).unwrap();
        check(&module).unwrap();
        optimize(&module)
    }

    fn main_stmts(module: &Module) -> &[Stmt] {
        &module.func("main").unwrap().body.stmts
    }

    #[test]
    fn folds_constants() {
        let module = opt("fn main() -> int { return 2 + 3 * 4 - 6 / 2; }");
        assert!(matches!(
            main_stmts(&module)[0],
            Stmt::Return(Some(Expr::Int(11, _)), _)
        ));
    }

    #[test]
    fn folds_with_isa_semantics() {
        let module = opt("fn main() -> int { return 7 / 0 + (0 - 7) % 2; }");
        // 7/0 = 0; -7 % 2 = -1.
        assert!(matches!(
            main_stmts(&module)[0],
            Stmt::Return(Some(Expr::Int(-1, _)), _)
        ));
    }

    #[test]
    fn identities_preserve_variables() {
        let module = opt(
            "fn main() -> int { var x: int = 5; return (x + 0) * 1 + 0 * (x - 2); }",
        );
        let Stmt::Return(Some(expr), _) = &main_stmts(&module)[1] else {
            panic!()
        };
        // (x+0)*1 => x; 0*(x-2) => 0; x + 0 => x.
        assert!(matches!(expr, Expr::Var(name, _) if name == "x"), "{expr:?}");
    }

    #[test]
    fn impure_operands_survive() {
        let module = opt(
            "fn f() -> int { return 1; } fn main() -> int { return f() * 0; }",
        );
        // The call must NOT be deleted.
        let Stmt::Return(Some(expr), _) = &main_stmts(&module)[0] else {
            panic!()
        };
        assert!(matches!(expr, Expr::Binary { .. }), "call was discarded: {expr:?}");
    }

    #[test]
    fn dead_if_pruned() {
        let module = opt(
            "fn main() -> int { var x: int = 1; if (0) { x = 2; } if (1) { x = 3; } else { x = 4; } return x; }",
        );
        // `if (0)` gone entirely; `if (1)` reduced to its then-arm block.
        let stmts = main_stmts(&module);
        assert_eq!(stmts.len(), 3);
        assert!(matches!(stmts[1], Stmt::Block(_)));
    }

    #[test]
    fn dead_while_pruned_and_for_keeps_init() {
        let module = opt(
            "fn main() -> int { var s: int = 0; while (0) { s = 1; } for (s = 5; 0; s = 9) { s = 7; } return s; }",
        );
        let stmts = main_stmts(&module);
        // while gone; for reduced to its init assignment.
        assert_eq!(stmts.len(), 3);
        assert!(matches!(&stmts[1], Stmt::Block(b) if b.stmts.len() == 1));
    }

    #[test]
    fn logical_folding_respects_short_circuit() {
        let module = opt(
            "fn f() -> int { return 1; } fn main() -> int { return (0 && f() != 0) + (1 || f() != 0); }",
        );
        // Both fold away without touching f (lhs decides the outcome).
        assert!(matches!(
            main_stmts(&module)[0],
            Stmt::Return(Some(Expr::Int(1, _)), _)
        ));
        // But `f() && 0` must keep the call.
        let kept = opt("fn f() -> int { return 1; } fn main() -> int { return f() != 0 && 0 != 0; }");
        let Stmt::Return(Some(expr), _) = &main_stmts(&kept)[0] else {
            panic!()
        };
        assert!(matches!(expr, Expr::Binary { op: BinOp::LogAnd, .. }));
    }

    #[test]
    fn double_negation() {
        let module = opt("fn main() -> int { var x: int = 3; return -(-x); }");
        let Stmt::Return(Some(expr), _) = &main_stmts(&module)[1] else {
            panic!()
        };
        assert!(matches!(expr, Expr::Var(..)), "{expr:?}");
    }

    /// The optimizer is semantics-preserving: interpret both versions.
    #[test]
    fn differential_against_interpreter() {
        let sources = [
            "fn main() -> int { var s: int = 0; for (var i: int = 0; i < 10; i = i + 1) { s = s + i * 1 + 0; } return s; }",
            "fn f(x: int) -> int { return x * 2; } fn main() -> int { return f(3) * 0 + f(4) + (1 && 2); }",
            "var g: int[4] = {9, 8, 7, 6}; fn main() -> int { return g[1 + 1] + g[0] * 1; }",
            "fn main() -> int { var x: int = 10; while (x > 0 && 1) { x = x - (2 - 1); } return x; }",
        ];
        for source in sources {
            let module = parse(source).unwrap();
            check(&module).unwrap();
            let optimized = optimize(&module);
            let a = interpret(&module, 1_000_000).unwrap();
            let b = interpret(&optimized, 1_000_000).unwrap();
            assert_eq!(a.result, b.result, "optimizer changed semantics of:\n{source}");
            assert_eq!(a.globals, b.globals);
            assert!(b.steps <= a.steps, "optimizer made the program slower");
        }
    }
}
