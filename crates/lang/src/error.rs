use std::fmt;

/// Error produced by the MiniC front end or compiler.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LangError {
    line: usize,
    column: usize,
    message: String,
}

impl LangError {
    pub(crate) fn new(line: usize, column: usize, message: impl Into<String>) -> LangError {
        LangError {
            line,
            column,
            message: message.into(),
        }
    }

    pub(crate) fn internal(message: impl Into<String>) -> LangError {
        LangError {
            line: 0,
            column: 0,
            message: message.into(),
        }
    }

    /// 1-based source line (0 for internal errors).
    pub fn line(&self) -> usize {
        self.line
    }

    /// 1-based source column (0 for internal errors).
    pub fn column(&self) -> usize {
        self.column
    }

    /// Description of the problem.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "minic error: {}", self.message)
        } else {
            write!(
                f,
                "minic error at {}:{}: {}",
                self.line, self.column, self.message
            )
        }
    }
}

impl std::error::Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_position() {
        let err = LangError::new(3, 7, "unexpected token");
        assert_eq!(err.to_string(), "minic error at 3:7: unexpected token");
        assert_eq!(err.line(), 3);
        assert_eq!(err.column(), 7);
    }

    #[test]
    fn display_internal() {
        let err = LangError::internal("codegen invariant violated");
        assert_eq!(err.to_string(), "minic error: codegen invariant violated");
    }
}
