//! A reference interpreter for MiniC.
//!
//! Executes the AST directly, with the same word-oriented memory model the
//! compiled code sees (globals at [`DATA_BASE`], local arrays on a
//! simulated stack, wrapping arithmetic, division by zero yielding zero).
//! Its purpose is **differential testing**: for any program whose result
//! does not depend on concrete code addresses, the interpreter and the
//! compiled program must produce the same `main` result and the same final
//! global values. The workspace test suite checks this on both handwritten
//! programs and property-generated random programs.

use std::collections::HashMap;

use clfp_isa::{DATA_BASE, WORD};

use crate::ast::{BinOp, Block, Expr, Func, LValue, Module, Stmt, UnOp};
use crate::LangError;

/// Result of interpreting a program.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InterpOutcome {
    /// The value returned by `main`.
    pub result: i32,
    /// Final contents of the globals area, in declaration order (arrays
    /// flattened).
    pub globals: Vec<i32>,
    /// Number of statements and expressions evaluated (a fuel measure, not
    /// an instruction count).
    pub steps: u64,
}

/// Interprets a checked module, with an evaluation-fuel limit.
///
/// # Errors
///
/// Returns a [`LangError`] if the fuel runs out, the call stack exceeds its
/// limit, or a memory access leaves the simulated address space.
pub fn interpret(module: &Module, fuel: u64) -> Result<InterpOutcome, LangError> {
    // The interpreter recurses on the Rust stack; run it on a thread with
    // enough room for the documented 4096-call depth limit.
    std::thread::scope(|scope| {
        std::thread::Builder::new()
            .name("minic-interp".into())
            .stack_size(64 << 20)
            .spawn_scoped(scope, || interpret_inner(module, fuel))
            .expect("spawn interpreter thread")
            .join()
            .expect("interpreter thread panicked")
    })
}

fn interpret_inner(module: &Module, fuel: u64) -> Result<InterpOutcome, LangError> {
    let mem_words = 1usize << 20;
    let mut interp = Interp {
        module,
        mem: vec![0; mem_words],
        sp: (mem_words as u32) * WORD,
        scopes: Vec::new(),
        global_addrs: HashMap::new(),
        fuel,
        steps: 0,
        depth: 0,
    };
    // Lay out globals exactly like the code generator.
    let mut addr = DATA_BASE;
    let mut global_addrs = HashMap::new();
    for global in &module.globals {
        global_addrs.insert(global.name.clone(), (addr, global.array_len.is_some()));
        for (i, &value) in global.init.iter().enumerate() {
            let index = (addr / WORD) as usize + i;
            interp.mem[index] = value;
        }
        addr += global.words() * WORD;
    }
    let globals_end = addr;
    interp.global_addrs = global_addrs;

    let main = module.func("main").ok_or_else(|| LangError::internal("no main"))?;
    let result = interp.call(main, &[])?.unwrap_or_default();
    let globals = interp.mem[(DATA_BASE / WORD) as usize..(globals_end / WORD) as usize].to_vec();
    Ok(InterpOutcome {
        result,
        globals,
        steps: interp.steps,
    })
}

/// Convenience: parse, check, and interpret source text.
///
/// # Errors
///
/// Propagates front-end and interpretation errors.
pub fn interpret_source(source: &str, fuel: u64) -> Result<InterpOutcome, LangError> {
    let module = crate::parse(source)?;
    crate::check(&module)?;
    interpret(&module, fuel)
}

enum Flow {
    Normal,
    Break,
    Continue,
    Return(i32),
}

struct Interp<'a> {
    module: &'a Module,
    mem: Vec<i32>,
    sp: u32,
    /// Lexical scopes of the *current* function frame only.
    scopes: Vec<HashMap<String, i32>>,
    /// Global name -> (address, is_array).
    global_addrs: HashMap<String, (u32, bool)>,
    fuel: u64,
    steps: u64,
    depth: usize,
}

impl<'a> Interp<'a> {
    fn tick(&mut self) -> Result<(), LangError> {
        self.steps += 1;
        if self.steps > self.fuel {
            Err(LangError::internal("interpreter fuel exhausted"))
        } else {
            Ok(())
        }
    }

    fn load(&self, addr: i32) -> Result<i32, LangError> {
        let index = (addr as u32 / WORD) as usize;
        if !(addr as u32).is_multiple_of(WORD) || index >= self.mem.len() {
            return Err(LangError::internal(format!("bad load address {addr:#x}")));
        }
        Ok(self.mem[index])
    }

    fn store(&mut self, addr: i32, value: i32) -> Result<(), LangError> {
        let index = (addr as u32 / WORD) as usize;
        if !(addr as u32).is_multiple_of(WORD) || index >= self.mem.len() {
            return Err(LangError::internal(format!("bad store address {addr:#x}")));
        }
        self.mem[index] = value;
        Ok(())
    }

    fn func_addr(&self, name: &str) -> i32 {
        // Function "addresses" are small ids; consistent within a run,
        // which is all indirect calls need.
        self.module
            .funcs
            .iter()
            .position(|f| f.name == name)
            .expect("checked by sema") as i32
            + 1
    }

    fn func_by_addr(&self, addr: i32) -> Result<&'a Func, LangError> {
        self.module
            .funcs
            .get((addr - 1) as usize)
            .ok_or_else(|| LangError::internal(format!("indirect call to bad address {addr}")))
    }

    fn call(&mut self, func: &'a Func, args: &[i32]) -> Result<Option<i32>, LangError> {
        self.depth += 1;
        if self.depth > 4096 {
            return Err(LangError::internal("call stack overflow"));
        }
        let saved_scopes = std::mem::take(&mut self.scopes);
        let saved_sp = self.sp;
        let mut top = HashMap::new();
        for (param, &value) in func.params.iter().zip(args) {
            top.insert(param.clone(), value);
        }
        self.scopes.push(top);
        let flow = self.block_in_scope(&func.body)?;
        let result = match flow {
            Flow::Return(v) => Some(v),
            _ => Some(0),
        };
        self.scopes = saved_scopes;
        self.sp = saved_sp;
        self.depth -= 1;
        Ok(result)
    }

    fn lookup(&self, name: &str) -> Option<i32> {
        for scope in self.scopes.iter().rev() {
            if let Some(&value) = scope.get(name) {
                return Some(value);
            }
        }
        None
    }

    fn assign_var(&mut self, name: &str, value: i32) -> Result<(), LangError> {
        for scope in self.scopes.iter_mut().rev() {
            if let Some(slot) = scope.get_mut(name) {
                *slot = value;
                return Ok(());
            }
        }
        // Global scalar.
        let (addr, _) = *self
            .global_addrs
            .get(name)
            .ok_or_else(|| LangError::internal(format!("undefined `{name}`")))?;
        self.store(addr as i32, value)
    }

    fn block(&mut self, block: &'a Block) -> Result<Flow, LangError> {
        self.scopes.push(HashMap::new());
        let flow = self.block_in_scope(block);
        self.scopes.pop();
        flow
    }

    fn block_in_scope(&mut self, block: &'a Block) -> Result<Flow, LangError> {
        for stmt in &block.stmts {
            match self.stmt(stmt)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn stmt(&mut self, stmt: &'a Stmt) -> Result<Flow, LangError> {
        self.tick()?;
        match stmt {
            Stmt::VarDecl {
                name,
                array_len,
                init,
                ..
            } => {
                let value = match (array_len, init) {
                    (Some(len), _) => {
                        // Allocate the array on the simulated stack; the
                        // variable holds its address.
                        self.sp -= len * WORD;
                        let base = self.sp;
                        // Stack memory is not zeroed by real frames, but our
                        // VM memory starts zeroed and frames are fresh on
                        // first use; zero here for deterministic reuse.
                        for i in 0..*len {
                            self.store((base + i * WORD) as i32, 0)?;
                        }
                        base as i32
                    }
                    (None, Some(init)) => self.expr(init)?,
                    (None, None) => 0,
                };
                self.scopes
                    .last_mut()
                    .expect("inside function")
                    .insert(name.clone(), value);
                Ok(Flow::Normal)
            }
            Stmt::Assign { target, value, .. } => {
                match target {
                    LValue::Var(name) => {
                        let value = self.expr(value)?;
                        self.assign_var(name, value)?;
                    }
                    LValue::Index { base, index } => {
                        let value = self.expr(value)?;
                        let addr = self.element_addr(base, index)?;
                        self.store(addr, value)?;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Expr(expr) => {
                self.expr(expr)?;
                Ok(Flow::Normal)
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                if self.expr(cond)? != 0 {
                    self.block(then_blk)
                } else if let Some(else_blk) = else_blk {
                    self.block(else_blk)
                } else {
                    Ok(Flow::Normal)
                }
            }
            Stmt::While { cond, body, .. } => {
                while self.expr(cond)? != 0 {
                    self.tick()?;
                    match self.block(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                self.scopes.push(HashMap::new());
                let result = (|| {
                    if let Some(init) = init {
                        self.stmt(init)?;
                    }
                    loop {
                        let go = match cond {
                            Some(cond) => self.expr(cond)? != 0,
                            None => true,
                        };
                        if !go {
                            break;
                        }
                        self.tick()?;
                        match self.block(body)? {
                            Flow::Break => break,
                            Flow::Return(v) => return Ok(Flow::Return(v)),
                            Flow::Normal | Flow::Continue => {}
                        }
                        if let Some(step) = step {
                            self.stmt(step)?;
                        }
                    }
                    Ok(Flow::Normal)
                })();
                self.scopes.pop();
                result
            }
            Stmt::Break(_) => Ok(Flow::Break),
            Stmt::Continue(_) => Ok(Flow::Continue),
            Stmt::Return(value, _) => {
                let v = match value {
                    Some(value) => self.expr(value)?,
                    None => 0,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Block(block) => self.block(block),
        }
    }

    fn element_addr(&mut self, base: &'a Expr, index: &'a Expr) -> Result<i32, LangError> {
        let base_value = match base {
            Expr::Var(name, _) => match self.lookup(name) {
                Some(value) => value, // scalar local (pointer) or local array base
                None => {
                    let (addr, _) = *self
                        .global_addrs
                        .get(name)
                        .ok_or_else(|| LangError::internal(format!("undefined `{name}`")))?;
                    let (_, is_array) = self.global_addrs[name];
                    if is_array {
                        addr as i32
                    } else {
                        self.load(addr as i32)? // global scalar holding a pointer
                    }
                }
            },
            other => self.expr(other)?,
        };
        let index_value = self.expr(index)?;
        Ok(base_value.wrapping_add(index_value.wrapping_mul(4)))
    }

    fn expr(&mut self, expr: &'a Expr) -> Result<i32, LangError> {
        self.tick()?;
        match expr {
            Expr::Int(v, _) => Ok(*v),
            Expr::Var(name, _) => {
                if let Some(value) = self.lookup(name) {
                    return Ok(value);
                }
                let (addr, is_array) = *self
                    .global_addrs
                    .get(name)
                    .ok_or_else(|| LangError::internal(format!("undefined `{name}`")))?;
                if is_array {
                    Ok(addr as i32)
                } else {
                    self.load(addr as i32)
                }
            }
            Expr::Index { base, index, .. } => {
                let addr = self.element_addr(base, index)?;
                self.load(addr)
            }
            Expr::Unary { op, expr, .. } => match op {
                UnOp::Neg => Ok(self.expr(expr)?.wrapping_neg()),
                UnOp::Not => Ok((self.expr(expr)? == 0) as i32),
                UnOp::AddrOf => {
                    let Expr::Var(name, _) = expr.as_ref() else {
                        unreachable!("checked by sema");
                    };
                    Ok(self.func_addr(name))
                }
            },
            Expr::Binary { op, lhs, rhs, .. } => {
                match op {
                    BinOp::LogAnd => {
                        if self.expr(lhs)? == 0 {
                            return Ok(0);
                        }
                        return Ok((self.expr(rhs)? != 0) as i32);
                    }
                    BinOp::LogOr => {
                        if self.expr(lhs)? != 0 {
                            return Ok(1);
                        }
                        return Ok((self.expr(rhs)? != 0) as i32);
                    }
                    _ => {}
                }
                let a = self.expr(lhs)?;
                let b = self.expr(rhs)?;
                Ok(eval_binop(*op, a, b))
            }
            Expr::Call { name, args, .. } => {
                let mut values = Vec::with_capacity(args.len());
                for arg in args {
                    values.push(self.expr(arg)?);
                }
                let func = if self.module.func(name).is_some() {
                    self.module.func(name).expect("just checked")
                } else {
                    // Indirect call through a variable.
                    let addr = match self.lookup(name) {
                        Some(value) => value,
                        None => {
                            let (gaddr, _) = *self
                                .global_addrs
                                .get(name)
                                .ok_or_else(|| {
                                    LangError::internal(format!("undefined `{name}`"))
                                })?;
                            self.load(gaddr as i32)?
                        }
                    };
                    self.func_by_addr(addr)?
                };
                Ok(self.call(func, &values)?.unwrap_or(0))
            }
        }
    }
}

/// Evaluates a non-logical binary operator with the exact semantics of the
/// ISA's [`AluOp`](clfp_isa::AluOp).
pub(crate) fn eval_binop(op: BinOp, a: i32, b: i32) -> i32 {
    use clfp_isa::AluOp;
    match op {
        BinOp::Add => AluOp::Add.eval(a, b),
        BinOp::Sub => AluOp::Sub.eval(a, b),
        BinOp::Mul => AluOp::Mul.eval(a, b),
        BinOp::Div => AluOp::Div.eval(a, b),
        BinOp::Rem => AluOp::Rem.eval(a, b),
        BinOp::Shl => AluOp::Sll.eval(a, b),
        BinOp::Shr => AluOp::Sra.eval(a, b),
        BinOp::Lt => AluOp::Slt.eval(a, b),
        BinOp::Le => AluOp::Sle.eval(a, b),
        BinOp::Gt => AluOp::Slt.eval(b, a),
        BinOp::Ge => AluOp::Sle.eval(b, a),
        BinOp::Eq => AluOp::Seq.eval(a, b),
        BinOp::Ne => AluOp::Sne.eval(a, b),
        BinOp::BitAnd => AluOp::And.eval(a, b),
        BinOp::BitOr => AluOp::Or.eval(a, b),
        BinOp::BitXor => AluOp::Xor.eval(a, b),
        BinOp::LogAnd | BinOp::LogOr => unreachable!("handled by caller"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(source: &str) -> i32 {
        interpret_source(source, 10_000_000).unwrap().result
    }

    #[test]
    fn arithmetic() {
        assert_eq!(run("fn main() -> int { return 2 + 3 * 4; }"), 14);
        assert_eq!(run("fn main() -> int { return (2 + 3) * 4; }"), 20);
        assert_eq!(run("fn main() -> int { return 7 / 2; }"), 3);
        assert_eq!(run("fn main() -> int { return 7 % 0; }"), 0);
        assert_eq!(run("fn main() -> int { return -7 >> 1; }"), -4);
    }

    #[test]
    fn locals_and_loops() {
        let source = r#"
            fn main() -> int {
                var s: int = 0;
                for (var i: int = 1; i <= 10; i = i + 1) { s = s + i; }
                return s;
            }
        "#;
        assert_eq!(run(source), 55);
    }

    #[test]
    fn globals_and_arrays() {
        let source = r#"
            var total: int;
            var data: int[5] = {3, 1, 4, 1, 5};
            fn main() -> int {
                for (var i: int = 0; i < 5; i = i + 1) { total = total + data[i]; }
                return total;
            }
        "#;
        let outcome = interpret_source(source, 1_000_000).unwrap();
        assert_eq!(outcome.result, 14);
        assert_eq!(outcome.globals[0], 14); // `total` is the first global
    }

    #[test]
    fn recursion() {
        let source = r#"
            fn fib(n: int) -> int {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            fn main() -> int { return fib(12); }
        "#;
        assert_eq!(run(source), 144);
    }

    #[test]
    fn short_circuit() {
        // Division by zero guarded by &&: never evaluated.
        let source = r#"
            fn boom() -> int { return 1 / 0; }
            fn main() -> int {
                var x: int = 0;
                if (x != 0 && boom() > 0) { return 1; }
                return 2;
            }
        "#;
        assert_eq!(run(source), 2);
    }

    #[test]
    fn indirect_calls() {
        let source = r#"
            fn double(x: int) -> int { return x * 2; }
            fn triple(x: int) -> int { return x * 3; }
            fn main() -> int {
                var f: int = &double;
                var g: int = &triple;
                return f(10) + g(10);
            }
        "#;
        assert_eq!(run(source), 50);
    }

    #[test]
    fn local_arrays_and_pointers() {
        let source = r#"
            fn sum(p: int, n: int) -> int {
                var s: int = 0;
                for (var i: int = 0; i < n; i = i + 1) { s = s + p[i]; }
                return s;
            }
            fn main() -> int {
                var buf: int[4];
                buf[0] = 10; buf[1] = 20; buf[2] = 30; buf[3] = 40;
                return sum(buf, 4);
            }
        "#;
        assert_eq!(run(source), 100);
    }

    #[test]
    fn break_and_continue() {
        let source = r#"
            fn main() -> int {
                var s: int = 0;
                for (var i: int = 0; i < 100; i = i + 1) {
                    if (i == 10) { break; }
                    if (i % 2 == 1) { continue; }
                    s = s + i;
                }
                return s;
            }
        "#;
        assert_eq!(run(source), 2 + 4 + 6 + 8);
    }

    #[test]
    fn fuel_limit() {
        let source = "fn main() -> int { while (1) { } return 0; }";
        let err = interpret_source(source, 1000).unwrap_err();
        assert!(err.to_string().contains("fuel"));
    }

    #[test]
    fn while_with_memory() {
        let source = r#"
            var heap: int[16];
            fn main() -> int {
                // Build a linked list 3 -> 2 -> 1 in the heap arena.
                var hp: int = heap;
                var head: int = 0;
                for (var i: int = 1; i <= 3; i = i + 1) {
                    hp[0] = i;       // value
                    hp[1] = head;    // next
                    head = hp;
                    hp = hp + 8;
                }
                var s: int = 0;
                while (head != 0) {
                    s = s * 10 + head[0];
                    head = head[1];
                }
                return s;
            }
        "#;
        assert_eq!(run(source), 321);
    }
}
