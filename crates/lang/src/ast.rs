//! The MiniC abstract syntax tree.

use crate::lexer::Pos;

/// A whole translation unit.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Module {
    /// Global variable declarations, in source order.
    pub globals: Vec<Global>,
    /// Function declarations, in source order.
    pub funcs: Vec<Func>,
}

impl Module {
    /// Looks up a function by name.
    pub fn func(&self, name: &str) -> Option<&Func> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// Looks up a global by name.
    pub fn global(&self, name: &str) -> Option<&Global> {
        self.globals.iter().find(|g| g.name == name)
    }
}

/// A global variable: a scalar or a fixed-size word array.
#[derive(Clone, PartialEq, Debug)]
pub struct Global {
    /// Variable name.
    pub name: String,
    /// Array length; `None` for scalars.
    pub array_len: Option<u32>,
    /// Initial values (scalars: at most one; arrays: up to `array_len`,
    /// rest zero-filled).
    pub init: Vec<i32>,
    /// Source position.
    pub pos: Pos,
}

impl Global {
    /// Size in words.
    pub fn words(&self) -> u32 {
        self.array_len.unwrap_or(1)
    }
}

/// A function declaration.
#[derive(Clone, PartialEq, Debug)]
pub struct Func {
    /// Function name.
    pub name: String,
    /// Parameter names (all parameters are `int`).
    pub params: Vec<String>,
    /// Function body.
    pub body: Block,
    /// Source position.
    pub pos: Pos,
}

/// A brace-delimited statement list (a scope).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Block {
    /// The statements.
    pub stmts: Vec<Stmt>,
}

/// A statement.
#[derive(Clone, PartialEq, Debug)]
pub enum Stmt {
    /// `var name: int = init;` or `var name: int[len];`
    VarDecl {
        name: String,
        /// Array length; `None` for scalars.
        array_len: Option<u32>,
        /// Scalar initializer.
        init: Option<Expr>,
        pos: Pos,
    },
    /// `lvalue = expr;`
    Assign { target: LValue, value: Expr, pos: Pos },
    /// An expression evaluated for effect (a call).
    Expr(Expr),
    /// `if (cond) { .. } else { .. }`
    If {
        cond: Expr,
        then_blk: Block,
        else_blk: Option<Block>,
        pos: Pos,
    },
    /// `while (cond) { .. }`
    While { cond: Expr, body: Block, pos: Pos },
    /// `for (init; cond; step) { .. }` — each header part optional.
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Box<Stmt>>,
        body: Block,
        pos: Pos,
    },
    /// `break;`
    Break(Pos),
    /// `continue;`
    Continue(Pos),
    /// `return;` or `return expr;`
    Return(Option<Expr>, Pos),
    /// A nested block scope.
    Block(Block),
}

/// An assignable location.
#[derive(Clone, PartialEq, Debug)]
pub enum LValue {
    /// A scalar variable.
    Var(String),
    /// `base[index]` — `base` is an array variable or a word pointer.
    Index { base: Box<Expr>, index: Box<Expr> },
}

/// Unary operators.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (`!x` is 1 if x == 0, else 0).
    Not,
    /// Bitwise complement is spelled `x ^ -1`; no dedicated operator.
    AddrOf,
}

/// Binary operators.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    BitAnd,
    BitOr,
    BitXor,
    /// Short-circuit logical and.
    LogAnd,
    /// Short-circuit logical or.
    LogOr,
}

impl BinOp {
    /// Whether the operator yields a 0/1 comparison result.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// Whether the operator is short-circuiting.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::LogAnd | BinOp::LogOr)
    }
}

/// An expression.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// Integer literal.
    Int(i32, Pos),
    /// Variable reference; arrays decay to their address.
    Var(String, Pos),
    /// `base[index]`, a word load.
    Index {
        base: Box<Expr>,
        index: Box<Expr>,
        pos: Pos,
    },
    /// Unary operation (`-x`, `!x`, `&func`).
    Unary {
        op: UnOp,
        expr: Box<Expr>,
        pos: Pos,
    },
    /// Binary operation.
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        pos: Pos,
    },
    /// Call: direct if `name` is a function, indirect if it is a variable
    /// holding a function address.
    Call {
        name: String,
        args: Vec<Expr>,
        pos: Pos,
    },
}

impl Expr {
    /// Source position of the expression.
    pub fn pos(&self) -> Pos {
        match self {
            Expr::Int(_, pos)
            | Expr::Var(_, pos)
            | Expr::Index { pos, .. }
            | Expr::Unary { pos, .. }
            | Expr::Binary { pos, .. }
            | Expr::Call { pos, .. } => *pos,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(BinOp::Eq.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::LogAnd.is_logical());
        assert!(!BinOp::BitAnd.is_logical());
    }

    #[test]
    fn global_words() {
        let scalar = Global {
            name: "g".into(),
            array_len: None,
            init: vec![],
            pos: Pos::default(),
        };
        assert_eq!(scalar.words(), 1);
        let array = Global {
            name: "a".into(),
            array_len: Some(10),
            init: vec![],
            pos: Pos::default(),
        };
        assert_eq!(array.words(), 10);
    }

    #[test]
    fn module_lookup() {
        let module = Module {
            globals: vec![Global {
                name: "g".into(),
                array_len: None,
                init: vec![1],
                pos: Pos::default(),
            }],
            funcs: vec![Func {
                name: "main".into(),
                params: vec![],
                body: Block::default(),
                pos: Pos::default(),
            }],
        };
        assert!(module.func("main").is_some());
        assert!(module.func("other").is_none());
        assert!(module.global("g").is_some());
    }
}
