//! # clfp-lang
//!
//! **MiniC**: a small C-like language and compiler targeting the clfp
//! instruction set.
//!
//! The original study traced SPEC-era C and FORTRAN programs compiled by
//! the MIPS compilers with full optimization. Reproducing the study
//! therefore needs a compiler whose output has the same *shape* as 1992
//! MIPS `-O` code:
//!
//! * scalar locals and loop indices live in callee-saved registers (the
//!   induction-variable analysis of Section 4.2 assumes this);
//! * every function allocates and frees a stack frame by adjusting `sp`
//!   (the serial dependence "perfect inlining" removes);
//! * loops compile to a register increment, a compare against a
//!   loop-invariant bound, and a conditional back edge;
//! * short-circuit booleans, `if`/`else`, `while`/`for`, recursion, and
//!   calls through function pointers produce the control-flow variety the
//!   seven machine models are sensitive to.
//!
//! ## Language summary
//!
//! ```text
//! var g: int = 3;                 // global scalar
//! var table: int[8] = {1,2,3};    // global array (rest zero-filled)
//!
//! fn add(a: int, b: int) -> int { return a + b; }
//!
//! fn main() -> int {
//!     var s: int = 0;
//!     for (var i: int = 0; i < 8; i = i + 1) {
//!         if (table[i] > 0 && i % 2 == 0) { s = s + table[i]; }
//!     }
//!     var f: int = &add;          // function address
//!     s = f(s, g);                // indirect call
//!     return s;
//! }
//! ```
//!
//! Arrays decay to addresses; indexing `p[i]` works on any integer value
//! as a word pointer, which is how workloads build linked structures in a
//! global arena. There are no other types: everything is a 32-bit word,
//! exactly like the study's view of a trace.
//!
//! ## Example
//!
//! ```
//! use clfp_lang::compile;
//! use clfp_vm::{Vm, VmOptions};
//! use clfp_isa::Reg;
//!
//! let program = compile("fn main() -> int { return 6 * 7; }")?;
//! let mut vm = Vm::new(&program, VmOptions::default());
//! vm.run(10_000)?;
//! assert_eq!(vm.reg(Reg::V0), 42);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod ast;
mod codegen;
mod error;
pub mod interp;
mod lexer;
mod opt;
mod parser;
mod sema;

pub use codegen::{generate_asm, generate_asm_with, CodegenOptions};
pub use error::LangError;
pub use interp::{interpret, interpret_source, InterpOutcome};
pub use lexer::{Lexer, Token, TokenKind};
pub use opt::optimize;
pub use parser::parse;
pub use sema::check;

use clfp_isa::Program;

/// Compiles MiniC source to a linked [`Program`].
///
/// Pipeline: lex → parse → semantic check → assembly generation →
/// assemble.
///
/// # Errors
///
/// Returns [`LangError`] for syntax or semantic errors; assembler failures
/// on generated code are reported as internal errors.
///
/// # Example
///
/// ```
/// let program = clfp_lang::compile("fn main() -> int { return 1 + 2; }")?;
/// assert!(program.text.len() > 3);
/// # Ok::<(), clfp_lang::LangError>(())
/// ```
pub fn compile(source: &str) -> Result<Program, LangError> {
    compile_with_options(source, CodegenOptions::default())
}

/// Compiles MiniC source with explicit [`CodegenOptions`] (e.g.
/// if-conversion to guarded moves).
///
/// # Errors
///
/// Same as [`compile`].
pub fn compile_with_options(
    source: &str,
    options: CodegenOptions,
) -> Result<Program, LangError> {
    let mut module = parse(source)?;
    check(&module)?;
    if options.optimize {
        module = optimize(&module);
    }
    let asm = generate_asm_with(&module, options)?;
    clfp_isa::assemble(&asm).map_err(|err| {
        LangError::internal(format!("generated assembly failed to assemble: {err}"))
    })
}

/// Compiles MiniC source and also returns the generated assembly listing,
/// for debugging and documentation.
///
/// # Errors
///
/// Same as [`compile`].
pub fn compile_with_listing(source: &str) -> Result<(Program, String), LangError> {
    let module = parse(source)?;
    check(&module)?;
    let asm = generate_asm(&module)?;
    let program = clfp_isa::assemble(&asm).map_err(|err| {
        LangError::internal(format!("generated assembly failed to assemble: {err}"))
    })?;
    Ok((program, asm))
}
