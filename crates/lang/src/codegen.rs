//! MiniC code generation.
//!
//! Emits clfp assembly text shaped like 1992 MIPS `-O` output:
//!
//! * scalar locals (including loop indices) in callee-saved registers
//!   `r8`–`r21`, saved/restored in prologue/epilogue;
//! * expression temporaries in caller-saved `r22`–`r25` with spill slots in
//!   the frame (`r26`/`r27` are materialization scratch);
//! * every function adjusts `sp` on entry and exit — the serial dependence
//!   the study's *perfect inlining* deletes;
//! * loop conditions compile to fused compare-and-branch against the index
//!   register, the pattern *perfect unrolling* recognizes;
//! * short-circuit `&&`/`||` compile to branches (control dependence), not
//!   data flow.
//!
//! Calling convention: arguments in `a0`–`a3`, result in `v0`, return
//! address in `ra`. Function labels are prefixed `mc_`; a `__start` stub
//! calls `mc_main` and halts.

use std::collections::HashMap;
use std::fmt::Write as _;

use clfp_isa::{DATA_BASE, WORD};

use crate::ast::{BinOp, Block, Expr, Func, LValue, Module, Stmt, UnOp};
use crate::LangError;

/// First and last callee-saved scalar registers.
const SCALAR_FIRST: u8 = 8;
const SCALAR_LAST: u8 = 21;
/// Eval-stack temporary registers.
const TEMP_FIRST: u8 = 22;
const TEMP_LAST: u8 = 25;
/// Materialization scratch registers (never hold live values across emits).
const SCRATCH0: u8 = 26;
const SCRATCH1: u8 = 27;
/// Number of in-frame eval spill slots.
const SPILL_SLOTS: u32 = 16;

/// Code-generation options.
#[derive(Copy, Clone, Debug, Default)]
pub struct CodegenOptions {
    /// Convert simple guarded assignments (`if (c) { x = pure_expr; }`,
    /// optionally with an else arm) into conditional moves instead of
    /// branches — the *guarded instructions* of the paper's Section 6.
    /// Off by default: the paper's baseline compilers did not if-convert.
    pub if_conversion: bool,
    /// Run the AST optimizer (constant folding, algebraic identities, dead
    /// branch elimination) before code generation. Off by default so the
    /// published tables are reproducible bit-for-bit; the workload sources
    /// contain no foldable constants by construction.
    pub optimize: bool,
}

/// Generates an assembly listing for a checked module.
///
/// # Errors
///
/// Returns [`LangError`] only for internal limits (an expression so deep it
/// exhausts the spill area), which no reasonable program reaches.
pub fn generate_asm(module: &Module) -> Result<String, LangError> {
    generate_asm_with(module, CodegenOptions::default())
}

/// Like [`generate_asm`] with explicit [`CodegenOptions`].
///
/// # Errors
///
/// Same as [`generate_asm`].
pub fn generate_asm_with(module: &Module, options: CodegenOptions) -> Result<String, LangError> {
    let mut out = String::new();

    // ---- data segment ----------------------------------------------------
    let mut global_addrs = HashMap::new();
    let mut next_addr = DATA_BASE;
    writeln!(out, "    .data").unwrap();
    for global in &module.globals {
        global_addrs.insert(global.name.clone(), next_addr);
        write!(out, "g_{}:", global.name).unwrap();
        let words = global.words();
        if global.init.is_empty() {
            writeln!(out, " .space {}", words * WORD).unwrap();
        } else {
            let inits: Vec<String> = global.init.iter().map(i32::to_string).collect();
            writeln!(out, " .word {}", inits.join(", ")).unwrap();
            let rest = words - global.init.len() as u32;
            if rest > 0 {
                writeln!(out, "    .space {}", rest * WORD).unwrap();
            }
        }
        next_addr += words * WORD;
    }

    // ---- text segment ----------------------------------------------------
    writeln!(out, "    .text").unwrap();
    writeln!(out, "__start:").unwrap();
    writeln!(out, "    call mc_main").unwrap();
    writeln!(out, "    halt").unwrap();

    for func in &module.funcs {
        let mut gen = FuncGen::new(module, &global_addrs, func);
        gen.options = options;
        gen.generate()?;
        out.push_str(&gen.finish());
    }
    Ok(out)
}

/// Where a local variable lives.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum Storage {
    /// A dedicated callee-saved register.
    Reg(u8),
    /// A frame word at `sp + offset`.
    Frame(u32),
    /// A frame-resident array starting at `sp + offset`.
    FrameArray(u32),
}

/// An eval-stack entry.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum Loc {
    /// Held in a temp register.
    Reg(u8),
    /// Spilled to eval slot `n` (frame word `spill_base + 4n`).
    Spill(u32),
    /// A borrowed scalar register (a live variable used read-only —
    /// must never be written or stored over).
    Borrow(u8),
    /// The zero register (constant 0).
    Zero,
}

struct FuncGen<'a> {
    module: &'a Module,
    global_addrs: &'a HashMap<String, u32>,
    func: &'a Func,
    body: String,
    /// Scope stack: name -> storage.
    scopes: Vec<HashMap<String, Storage>>,
    /// Storage for each declaration, assigned in a pre-pass.
    decl_storage: Vec<Storage>,
    /// Next declaration index during the main walk.
    decl_cursor: usize,
    /// Scalar registers used by this function (for save/restore).
    used_scalar_regs: Vec<u8>,
    /// Eval stack.
    stack: Vec<Loc>,
    /// Free temp registers.
    free_temps: Vec<u8>,
    /// Free spill slots.
    free_spills: Vec<u32>,
    /// Frame size in bytes.
    frame: u32,
    /// Byte offset of the eval spill area.
    spill_base: u32,
    /// (continue label, break label) stack.
    loop_labels: Vec<(String, String)>,
    /// Fresh-label counter.
    labels: u32,
    /// Byte offset of the saved-register area.
    saved_regs_base: u32,
    /// Whether the function makes no calls (leaf optimization: params stay
    /// in `a0`-`a3`, locals prefer caller-saved registers, no `ra` save).
    is_leaf: bool,
    /// Code-generation options.
    options: CodegenOptions,
    /// First internal error, reported at the end.
    err: Option<LangError>,
}

impl<'a> FuncGen<'a> {
    fn new(
        module: &'a Module,
        global_addrs: &'a HashMap<String, u32>,
        func: &'a Func,
    ) -> FuncGen<'a> {
        FuncGen {
            module,
            global_addrs,
            func,
            body: String::new(),
            scopes: Vec::new(),
            decl_storage: Vec::new(),
            decl_cursor: 0,
            used_scalar_regs: Vec::new(),
            stack: Vec::new(),
            free_temps: (TEMP_FIRST..=TEMP_LAST).rev().collect(),
            free_spills: (0..SPILL_SLOTS).rev().collect(),
            frame: 0,
            spill_base: 0,
            loop_labels: Vec::new(),
            labels: 0,
            saved_regs_base: 0,
            is_leaf: false,
            options: CodegenOptions::default(),
            err: None,
        }
    }

    // ---- frame layout pre-pass -------------------------------------------

    /// Walks the function collecting every declaration (params first) and
    /// assigns each one storage; computes the frame layout.
    fn layout(&mut self) {
        self.is_leaf = !body_has_calls(&self.func.body);
        let params = self.func.params.len();
        let mut decls: Vec<Option<u32>> = self.func.params.iter().map(|_| None).collect();
        collect_decls(&self.func.body, &mut decls);

        // Leaf functions prefer caller-saved registers (no save/restore):
        // `v1`, then the argument registers not occupied by parameters —
        // the classic MIPS leaf-procedure allocation.
        let mut caller_pool: Vec<u8> = Vec::new();
        if self.is_leaf {
            caller_pool.push(3); // v1
            for reg in (4 + params as u8)..8 {
                caller_pool.push(reg);
            }
            caller_pool.reverse(); // pop() takes v1 first
        }

        let mut next_reg = SCALAR_FIRST;
        // Frame: [ra][spill area][frame scalars][arrays][saved regs]
        let mut offset = WORD; // slot 0 is ra
        self.spill_base = offset;
        offset += SPILL_SLOTS * WORD;

        let mut frame_scalars = Vec::new();
        let mut arrays = Vec::new();
        for (index, decl) in decls.iter().enumerate() {
            match decl {
                None => {
                    if self.is_leaf && index < params {
                        // Parameters stay where they arrive.
                        self.decl_storage.push(Storage::Reg(4 + index as u8));
                    } else if let Some(reg) = caller_pool.pop() {
                        self.decl_storage.push(Storage::Reg(reg));
                    } else if next_reg <= SCALAR_LAST {
                        self.decl_storage.push(Storage::Reg(next_reg));
                        self.used_scalar_regs.push(next_reg);
                        next_reg += 1;
                    } else {
                        frame_scalars.push(self.decl_storage.len());
                        self.decl_storage.push(Storage::Frame(0)); // patched below
                    }
                }
                Some(len) => {
                    arrays.push((self.decl_storage.len(), *len));
                    self.decl_storage.push(Storage::FrameArray(0)); // patched below
                }
            }
        }
        for index in frame_scalars {
            self.decl_storage[index] = Storage::Frame(offset);
            offset += WORD;
        }
        for (index, len) in arrays {
            self.decl_storage[index] = Storage::FrameArray(offset);
            offset += len * WORD;
        }
        // Saved callee-saved registers.
        self.saved_regs_base = offset;
        offset += self.used_scalar_regs.len() as u32 * WORD;
        self.frame = offset;
    }

    // ---- label and emit helpers -------------------------------------------

    fn fresh_label(&mut self, hint: &str) -> String {
        self.labels += 1;
        format!("L{}_{}_{}", self.labels, sanitize(&self.func.name), hint)
    }

    fn emit(&mut self, line: &str) {
        writeln!(self.body, "    {line}").unwrap();
    }

    fn label(&mut self, name: &str) {
        writeln!(self.body, "{name}:").unwrap();
    }

    fn fail(&mut self, message: &str) {
        if self.err.is_none() {
            self.err = Some(LangError::internal(format!(
                "in `{}`: {message}",
                self.func.name
            )));
        }
    }

    // ---- eval stack -------------------------------------------------------

    fn alloc_temp(&mut self) -> Option<u8> {
        self.free_temps.pop()
    }

    fn alloc_spill(&mut self) -> u32 {
        match self.free_spills.pop() {
            Some(slot) => slot,
            None => {
                self.fail("expression too deep: eval spill area exhausted");
                0
            }
        }
    }

    fn spill_offset(&self, slot: u32) -> u32 {
        self.spill_base + slot * WORD
    }

    fn push(&mut self, loc: Loc) {
        self.stack.push(loc);
    }

    fn pop(&mut self) -> Loc {
        self.stack.pop().expect("eval stack underflow")
    }

    /// Releases the resources of a popped entry.
    fn free(&mut self, loc: Loc) {
        match loc {
            Loc::Reg(r) => self.free_temps.push(r),
            Loc::Spill(slot) => self.free_spills.push(slot),
            Loc::Borrow(_) | Loc::Zero => {}
        }
    }

    /// Brings a popped entry into a readable register. Spilled entries load
    /// into `scratch`; the register must be consumed before the next
    /// materialization using the same scratch.
    fn materialize(&mut self, loc: Loc, scratch: u8) -> u8 {
        match loc {
            Loc::Reg(r) | Loc::Borrow(r) => r,
            Loc::Zero => 0,
            Loc::Spill(slot) => {
                let off = self.spill_offset(slot);
                self.emit(&format!("lw r{scratch}, {off}(sp)"));
                scratch
            }
        }
    }

    /// Allocates a destination for a freshly computed value: a temp
    /// register when available, otherwise instructions write to scratch and
    /// the caller must call [`FuncGen::finish_result`].
    fn result_reg(&mut self) -> u8 {
        match self.alloc_temp() {
            Some(r) => r,
            None => SCRATCH0,
        }
    }

    /// Pushes the value now in `reg` (from [`FuncGen::result_reg`]) onto
    /// the eval stack, spilling if it lives in scratch.
    fn finish_result(&mut self, reg: u8) {
        if reg == SCRATCH0 || reg == SCRATCH1 {
            let slot = self.alloc_spill();
            let off = self.spill_offset(slot);
            self.emit(&format!("sw r{reg}, {off}(sp)"));
            self.push(Loc::Spill(slot));
        } else {
            self.push(Loc::Reg(reg));
        }
    }

    /// Spills every live register-resident eval entry (used before calls:
    /// temps are caller-save). Borrowed scalar registers are callee-saved
    /// and survive; they are left alone.
    fn spill_live_temps(&mut self) {
        for i in 0..self.stack.len() {
            if let Loc::Reg(r) = self.stack[i] {
                let slot = self.alloc_spill();
                let off = self.spill_offset(slot);
                self.emit(&format!("sw r{r}, {off}(sp)"));
                self.free_temps.push(r);
                self.stack[i] = Loc::Spill(slot);
            }
        }
    }

    // ---- name resolution ---------------------------------------------------

    fn lookup(&self, name: &str) -> Option<Storage> {
        for scope in self.scopes.iter().rev() {
            if let Some(&storage) = scope.get(name) {
                return Some(storage);
            }
        }
        None
    }

    fn global_addr(&self, name: &str) -> Option<u32> {
        self.global_addrs.get(name).copied()
    }

    fn is_global_array(&self, name: &str) -> bool {
        self.module
            .global(name)
            .is_some_and(|g| g.array_len.is_some())
    }

    // ---- function body -----------------------------------------------------

    fn generate(&mut self) -> Result<(), LangError> {
        self.layout();

        // Prologue. Leaf procedures do not save the return address (the
        // classic MIPS leaf optimization; the 1992 compilers did the same).
        self.label(&format!("mc_{}", sanitize(&self.func.name)));
        self.emit(&format!("addi sp, sp, -{}", self.frame));
        if !self.is_leaf {
            self.emit("sw ra, 0(sp)");
        }
        let saved: Vec<u8> = self.used_scalar_regs.clone();
        for (i, reg) in saved.iter().enumerate() {
            let off = self.saved_regs_base + i as u32 * WORD;
            self.emit(&format!("sw r{reg}, {off}(sp)"));
        }
        // Bind parameters.
        self.scopes.push(HashMap::new());
        for (i, param) in self.func.params.clone().into_iter().enumerate() {
            let storage = self.decl_storage[self.decl_cursor];
            self.decl_cursor += 1;
            match storage {
                // Leaf params stay in their arrival register.
                Storage::Reg(r) if r == 4 + i as u8 => {}
                Storage::Reg(r) => self.emit(&format!("mv r{r}, a{i}")),
                Storage::Frame(off) => self.emit(&format!("sw a{i}, {off}(sp)")),
                Storage::FrameArray(_) => unreachable!("params are scalars"),
            }
            self.scopes.last_mut().unwrap().insert(param, storage);
        }

        let body = self.func.body.clone();
        self.gen_block_in_scope(&body);
        self.scopes.pop();

        // Implicit `return 0` at the end.
        self.emit("li v0, 0");
        // Epilogue.
        self.label(&format!("Lret_{}", sanitize(&self.func.name)));
        for (i, reg) in saved.iter().enumerate() {
            let off = self.saved_regs_base + i as u32 * WORD;
            self.emit(&format!("lw r{reg}, {off}(sp)"));
        }
        if !self.is_leaf {
            self.emit("lw ra, 0(sp)");
        }
        self.emit(&format!("addi sp, sp, {}", self.frame));
        self.emit("ret");

        match self.err.take() {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }

    fn finish(self) -> String {
        self.body
    }

    fn gen_block(&mut self, block: &Block) {
        self.scopes.push(HashMap::new());
        self.gen_block_in_scope(block);
        self.scopes.pop();
    }

    fn gen_block_in_scope(&mut self, block: &Block) {
        for stmt in &block.stmts {
            self.gen_stmt(stmt);
            debug_assert!(self.stack.is_empty(), "eval stack leak after {stmt:?}");
        }
    }

    fn gen_stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::VarDecl { name, init, .. } => {
                let storage = self.decl_storage[self.decl_cursor];
                self.decl_cursor += 1;
                if let Some(init) = init.clone() {
                    match storage {
                        Storage::Reg(r) => self.eval_into(&init, r),
                        Storage::Frame(off) => {
                            self.eval(&init);
                            let loc = self.pop();
                            let reg = self.materialize(loc, SCRATCH0);
                            self.emit(&format!("sw r{reg}, {off}(sp)"));
                            self.free(loc);
                        }
                        Storage::FrameArray(_) => unreachable!("checked by parser"),
                    }
                }
                self.scopes
                    .last_mut()
                    .expect("inside function")
                    .insert(name.clone(), storage);
            }
            Stmt::Assign { target, value, .. } => self.gen_assign(target, value),
            Stmt::Expr(expr) => {
                self.eval(expr);
                let loc = self.pop();
                self.free(loc);
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                if self.options.if_conversion && self.try_if_convert(cond, then_blk, else_blk) {
                    return;
                }
                let else_label = self.fresh_label("else");
                let end_label = self.fresh_label("endif");
                let target = if else_blk.is_some() {
                    else_label.clone()
                } else {
                    end_label.clone()
                };
                self.gen_cond_false(cond, &target);
                self.gen_block(then_blk);
                if let Some(else_blk) = else_blk {
                    self.emit(&format!("j {end_label}"));
                    self.label(&else_label);
                    self.gen_block(else_blk);
                }
                self.label(&end_label);
            }
            Stmt::While { cond, body, .. } => {
                let head = self.fresh_label("while");
                let exit = self.fresh_label("endwhile");
                self.label(&head);
                self.gen_cond_false(cond, &exit);
                self.loop_labels.push((head.clone(), exit.clone()));
                self.gen_block(body);
                self.loop_labels.pop();
                self.emit(&format!("j {head}"));
                self.label(&exit);
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                self.scopes.push(HashMap::new());
                if let Some(init) = init {
                    self.gen_stmt(init);
                }
                let head = self.fresh_label("for");
                let step_label = self.fresh_label("step");
                let exit = self.fresh_label("endfor");
                self.label(&head);
                if let Some(cond) = cond {
                    self.gen_cond_false(cond, &exit);
                }
                self.loop_labels.push((step_label.clone(), exit.clone()));
                self.gen_block(body);
                self.loop_labels.pop();
                self.label(&step_label);
                if let Some(step) = step {
                    self.gen_stmt(step);
                }
                self.emit(&format!("j {head}"));
                self.label(&exit);
                self.scopes.pop();
            }
            Stmt::Break(_) => {
                let target = self
                    .loop_labels
                    .last()
                    .expect("checked by sema")
                    .1
                    .clone();
                self.emit(&format!("j {target}"));
            }
            Stmt::Continue(_) => {
                let target = self
                    .loop_labels
                    .last()
                    .expect("checked by sema")
                    .0
                    .clone();
                self.emit(&format!("j {target}"));
            }
            Stmt::Return(value, _) => {
                match value {
                    Some(value) => {
                        self.eval(value);
                        let loc = self.pop();
                        let reg = self.materialize(loc, SCRATCH0);
                        self.emit(&format!("mv v0, r{reg}"));
                        self.free(loc);
                    }
                    None => self.emit("li v0, 0"),
                }
                self.emit(&format!("j Lret_{}", sanitize(&self.func.name)));
            }
            Stmt::Block(block) => self.gen_block(block),
        }
    }

    /// Attempts to if-convert `if (cond) { x = a; } [else { x = b; }]`
    /// into guarded moves (paper Section 6). Returns whether it succeeded.
    ///
    /// Requirements: the arm(s) are single assignments to the same
    /// register-resident scalar, and the assigned expressions are
    /// speculation-safe (no calls, no memory accesses — a hoisted load
    /// could fault on the path where the guard protected it).
    fn try_if_convert(&mut self, cond: &Expr, then_blk: &Block, else_blk: &Option<Block>) -> bool {
        let arm = |block: &Block| -> Option<(String, Expr)> {
            let [Stmt::Assign {
                target: LValue::Var(name),
                value,
                ..
            }] = &block.stmts[..]
            else {
                return None;
            };
            if expr_is_speculation_safe(value) {
                Some((name.clone(), value.clone()))
            } else {
                None
            }
        };
        let Some((name, then_value)) = arm(then_blk) else {
            return false;
        };
        let else_value = match else_blk {
            None => None,
            Some(block) => match arm(block) {
                Some((else_name, value)) if else_name == name => Some(value),
                _ => return false,
            },
        };
        let Some(Storage::Reg(dest)) = self.lookup(&name) else {
            return false;
        };

        // Evaluate the guard and both values unconditionally, then commit
        // with conditional moves.
        self.eval(cond);
        let guard_loc = self.pop();
        let guard = self.materialize(guard_loc, SCRATCH0);
        // Keep the guard safe: if it sits in scratch it must survive the
        // value evaluations below, so promote it to a temp or spill.
        let (guard, guard_loc) = if guard == SCRATCH0 {
            match self.alloc_temp() {
                Some(r) => {
                    self.emit(&format!("mv r{r}, r{guard}"));
                    self.free(guard_loc);
                    (r, Loc::Reg(r))
                }
                None => {
                    let slot = self.alloc_spill();
                    let off = self.spill_offset(slot);
                    self.emit(&format!("sw r{guard}, {off}(sp)"));
                    self.free(guard_loc);
                    (SCRATCH0, Loc::Spill(slot))
                }
            }
        } else {
            (guard, guard_loc)
        };

        self.eval(&then_value);
        let then_loc = self.pop();
        let then_reg = self.materialize(then_loc, SCRATCH1);
        // Re-materialize the guard in case it was spilled.
        let guard = match guard_loc {
            Loc::Spill(slot) => {
                let off = self.spill_offset(slot);
                self.emit(&format!("lw r{SCRATCH0}, {off}(sp)"));
                SCRATCH0
            }
            _ => guard,
        };
        self.emit(&format!("cmovn r{dest}, r{then_reg}, r{guard}"));
        self.free(then_loc);

        if let Some(else_value) = else_value {
            self.eval(&else_value);
            let else_loc = self.pop();
            let else_reg = self.materialize(else_loc, SCRATCH1);
            let guard = match guard_loc {
                Loc::Spill(slot) => {
                    let off = self.spill_offset(slot);
                    self.emit(&format!("lw r{SCRATCH0}, {off}(sp)"));
                    SCRATCH0
                }
                _ => guard,
            };
            self.emit(&format!("cmovz r{dest}, r{else_reg}, r{guard}"));
            self.free(else_loc);
        }
        self.free(guard_loc);
        true
    }

    fn gen_assign(&mut self, target: &LValue, value: &Expr) {
        match target {
            LValue::Var(name) => match self.lookup(name) {
                Some(Storage::Reg(r)) => self.eval_into(value, r),
                Some(Storage::Frame(off)) => {
                    self.eval(value);
                    let loc = self.pop();
                    let reg = self.materialize(loc, SCRATCH0);
                    self.emit(&format!("sw r{reg}, {off}(sp)"));
                    self.free(loc);
                }
                Some(Storage::FrameArray(_)) => unreachable!("checked by sema"),
                None => {
                    // Global scalar: absolute-address store.
                    let addr = self.global_addr(name).expect("checked by sema");
                    self.eval(value);
                    let loc = self.pop();
                    let reg = self.materialize(loc, SCRATCH0);
                    self.emit(&format!("sw r{reg}, {addr}(r0)"));
                    self.free(loc);
                }
            },
            LValue::Index { base, index } => {
                // Evaluate the value first, then the address parts, so the
                // store consumes at most scratch + one temp.
                self.eval(value);
                let (addr_reg, offset, addr_loc) = self.gen_address(base, index);
                let value_loc = self.pop();
                let value_reg = self.materialize(value_loc, SCRATCH1);
                self.emit(&format!("sw r{value_reg}, {offset}(r{addr_reg})"));
                self.free(value_loc);
                if let Some(loc) = addr_loc {
                    self.free(loc);
                }
            }
        }
    }

    /// Computes the address of `base[index]`. Returns `(reg, offset, loc)`
    /// where the address is `reg + offset` and `loc` is an eval entry to
    /// free afterwards (already popped).
    fn gen_address(&mut self, base: &Expr, index: &Expr) -> (u8, i64, Option<Loc>) {
        // Resolve the base form.
        enum BaseKind {
            /// Constant byte address (global arrays / global scalars).
            Const(i64),
            /// sp + constant (local arrays).
            Sp(i64),
            /// A computed pointer value.
            Value,
        }
        let base_kind = match base {
            Expr::Var(name, _) => match self.lookup(name) {
                Some(Storage::FrameArray(off)) => BaseKind::Sp(off as i64),
                Some(_) => BaseKind::Value,
                None if self.is_global_array(name) || self.global_addr(name).is_some() => {
                    BaseKind::Const(self.global_addr(name).expect("global") as i64)
                }
                None => BaseKind::Value,
            },
            _ => BaseKind::Value,
        };

        match (base_kind, index) {
            // Constant base, constant index: absolute addressing.
            (BaseKind::Const(addr), Expr::Int(i, _)) => (0, addr + *i as i64 * 4, None),
            (BaseKind::Sp(off), Expr::Int(i, _)) => (29, off + *i as i64 * 4, None),
            (BaseKind::Const(addr), _) => {
                self.eval(index);
                let loc = self.pop();
                let reg = self.materialize(loc, SCRATCH0);
                let dest = self.addr_dest(loc, reg);
                self.emit(&format!("slli r{dest}, r{reg}, 2"));
                (dest, addr, Some(self.addr_loc(loc, dest)))
            }
            (BaseKind::Sp(off), _) => {
                self.eval(index);
                let loc = self.pop();
                let reg = self.materialize(loc, SCRATCH0);
                let dest = self.addr_dest(loc, reg);
                self.emit(&format!("slli r{dest}, r{reg}, 2"));
                self.emit(&format!("add r{dest}, sp, r{dest}"));
                (dest, off, Some(self.addr_loc(loc, dest)))
            }
            (BaseKind::Value, Expr::Int(i, _)) => {
                self.eval(base);
                let loc = self.pop();
                let reg = self.materialize(loc, SCRATCH0);
                // The base register is only read; no new register needed.
                (reg, *i as i64 * 4, Some(loc))
            }
            (BaseKind::Value, _) => {
                self.eval(base);
                self.eval(index);
                let index_loc = self.pop();
                let base_loc = self.pop();
                let index_reg = self.materialize(index_loc, SCRATCH0);
                let base_reg = self.materialize(base_loc, SCRATCH1);
                let dest = self.addr_dest2(index_loc, base_loc);
                self.emit(&format!("slli r{dest}, r{index_reg}, 2"));
                self.emit(&format!("add r{dest}, r{base_reg}, r{dest}"));
                // Free whichever of the two entries is not the dest.
                let dest_loc = self.addr_loc2(index_loc, base_loc, dest);
                (dest, 0, Some(dest_loc))
            }
        }
    }

    /// Picks a register to hold a computed address, preferring to reuse a
    /// temp the operand already owns.
    fn addr_dest(&mut self, loc: Loc, value_reg: u8) -> u8 {
        match loc {
            Loc::Reg(_) => value_reg, // reuse the owned temp
            _ => match self.alloc_temp() {
                Some(r) => r,
                None => SCRATCH0,
            },
        }
    }

    /// The eval entry that owns the address register from [`addr_dest`].
    fn addr_loc(&mut self, operand_loc: Loc, dest: u8) -> Loc {
        match operand_loc {
            Loc::Reg(r) if r == dest => Loc::Reg(r),
            other => {
                self.free(other);
                if (TEMP_FIRST..=TEMP_LAST).contains(&dest) {
                    Loc::Reg(dest)
                } else {
                    // Address lives in scratch; the very next instruction
                    // consumes it, so nothing to own.
                    Loc::Zero
                }
            }
        }
    }

    fn addr_dest2(&mut self, index_loc: Loc, base_loc: Loc) -> u8 {
        if let Loc::Reg(r) = index_loc {
            return r;
        }
        // The base register cannot be reused (it is read after the slli);
        // allocate a fresh temp, falling back to scratch.
        let _ = base_loc;
        match self.alloc_temp() {
            Some(r) => r,
            None => SCRATCH0,
        }
    }

    fn addr_loc2(&mut self, index_loc: Loc, base_loc: Loc, dest: u8) -> Loc {
        let mut dest_loc = Loc::Zero;
        for loc in [index_loc, base_loc] {
            match loc {
                Loc::Reg(r) if r == dest => dest_loc = loc,
                other => self.free(other),
            }
        }
        if dest_loc == Loc::Zero && (TEMP_FIRST..=TEMP_LAST).contains(&dest) {
            dest_loc = Loc::Reg(dest);
        }
        dest_loc
    }

    // ---- conditions --------------------------------------------------------

    /// Emits code that jumps to `target` when `cond` is false.
    fn gen_cond_false(&mut self, cond: &Expr, target: &str) {
        match cond {
            Expr::Binary { op, lhs, rhs, .. } if op.is_comparison() => {
                self.gen_compare_branch(op.negated(), lhs, rhs, target);
            }
            Expr::Binary {
                op: BinOp::LogAnd,
                lhs,
                rhs,
                ..
            } => {
                self.gen_cond_false(lhs, target);
                self.gen_cond_false(rhs, target);
            }
            Expr::Binary {
                op: BinOp::LogOr,
                lhs,
                rhs,
                ..
            } => {
                let taken = self.fresh_label("or");
                self.gen_cond_true(lhs, &taken);
                self.gen_cond_false(rhs, target);
                self.label(&taken);
            }
            Expr::Unary {
                op: UnOp::Not,
                expr,
                ..
            } => self.gen_cond_true(expr, target),
            Expr::Int(v, _) => {
                if *v == 0 {
                    self.emit(&format!("j {target}"));
                }
            }
            _ => {
                self.eval(cond);
                let loc = self.pop();
                let reg = self.materialize(loc, SCRATCH0);
                self.emit(&format!("beq r{reg}, r0, {target}"));
                self.free(loc);
            }
        }
    }

    /// Emits code that jumps to `target` when `cond` is true.
    fn gen_cond_true(&mut self, cond: &Expr, target: &str) {
        match cond {
            Expr::Binary { op, lhs, rhs, .. } if op.is_comparison() => {
                self.gen_compare_branch(*op, lhs, rhs, target);
            }
            Expr::Binary {
                op: BinOp::LogOr,
                lhs,
                rhs,
                ..
            } => {
                self.gen_cond_true(lhs, target);
                self.gen_cond_true(rhs, target);
            }
            Expr::Binary {
                op: BinOp::LogAnd,
                lhs,
                rhs,
                ..
            } => {
                let fallthrough = self.fresh_label("and");
                self.gen_cond_false(lhs, &fallthrough);
                self.gen_cond_true(rhs, target);
                self.label(&fallthrough);
            }
            Expr::Unary {
                op: UnOp::Not,
                expr,
                ..
            } => self.gen_cond_false(expr, target),
            Expr::Int(v, _) => {
                if *v != 0 {
                    self.emit(&format!("j {target}"));
                }
            }
            _ => {
                self.eval(cond);
                let loc = self.pop();
                let reg = self.materialize(loc, SCRATCH0);
                self.emit(&format!("bne r{reg}, r0, {target}"));
                self.free(loc);
            }
        }
    }

    /// Emits `b<op> lhs, rhs, target` with operands evaluated in place —
    /// register-resident variables are used directly (the fused
    /// compare-and-branch form the induction analysis recognizes).
    fn gen_compare_branch(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr, target: &str) {
        self.eval_operand(lhs);
        self.eval_operand(rhs);
        let rhs_loc = self.pop();
        let lhs_loc = self.pop();
        let rhs_reg = self.materialize(rhs_loc, SCRATCH0);
        let lhs_reg = self.materialize(lhs_loc, SCRATCH1);
        let mnemonic = match op {
            BinOp::Lt => "blt",
            BinOp::Le => "ble",
            BinOp::Gt => "bgt",
            BinOp::Ge => "bge",
            BinOp::Eq => "beq",
            BinOp::Ne => "bne",
            _ => unreachable!("comparison op"),
        };
        self.emit(&format!("{mnemonic} r{lhs_reg}, r{rhs_reg}, {target}"));
        self.free(rhs_loc);
        self.free(lhs_loc);
    }

    /// Evaluates an expression for use as a read-only operand: variables in
    /// registers are *borrowed* (no copy), zero literals use `r0`.
    fn eval_operand(&mut self, expr: &Expr) {
        match expr {
            Expr::Int(0, _) => self.push(Loc::Zero),
            Expr::Var(name, _) => match self.lookup(name) {
                Some(Storage::Reg(r)) => self.push(Loc::Borrow(r)),
                _ => self.eval(expr),
            },
            _ => self.eval(expr),
        }
    }

    // ---- expressions ---------------------------------------------------------

    /// Evaluates `expr`, pushing its location onto the eval stack.
    fn eval(&mut self, expr: &Expr) {
        match expr {
            Expr::Int(v, _) => {
                let dest = self.result_reg();
                self.emit(&format!("li r{dest}, {v}"));
                self.finish_result(dest);
            }
            Expr::Var(name, _) => match self.lookup(name) {
                Some(Storage::Reg(r)) => {
                    let dest = self.result_reg();
                    self.emit(&format!("mv r{dest}, r{r}"));
                    self.finish_result(dest);
                }
                Some(Storage::Frame(off)) => {
                    let dest = self.result_reg();
                    self.emit(&format!("lw r{dest}, {off}(sp)"));
                    self.finish_result(dest);
                }
                Some(Storage::FrameArray(off)) => {
                    // Local arrays decay to their address.
                    let dest = self.result_reg();
                    self.emit(&format!("addi r{dest}, sp, {off}"));
                    self.finish_result(dest);
                }
                None => {
                    let addr = self.global_addr(name).expect("checked by sema");
                    let dest = self.result_reg();
                    if self.is_global_array(name) {
                        self.emit(&format!("li r{dest}, {addr}"));
                    } else {
                        self.emit(&format!("lw r{dest}, {addr}(r0)"));
                    }
                    self.finish_result(dest);
                }
            },
            Expr::Index { base, index, .. } => {
                let (addr_reg, offset, addr_loc) = self.gen_address(base, index);
                let dest = match addr_loc {
                    Some(Loc::Reg(r)) => r, // reuse the address temp
                    _ => self.result_reg(),
                };
                self.emit(&format!("lw r{dest}, {offset}(r{addr_reg})"));
                match addr_loc {
                    Some(Loc::Reg(r)) if r == dest => self.push(Loc::Reg(r)),
                    other => {
                        if let Some(loc) = other {
                            self.free(loc);
                        }
                        self.finish_result(dest);
                    }
                }
            }
            Expr::Unary { op, expr, .. } => match op {
                UnOp::Neg => {
                    self.eval_operand(expr);
                    let loc = self.pop();
                    let reg = self.materialize(loc, SCRATCH0);
                    let dest = self.unary_dest(loc);
                    self.emit(&format!("sub r{dest}, r0, r{reg}"));
                    self.finish_unary(loc, dest);
                }
                UnOp::Not => {
                    self.eval_operand(expr);
                    let loc = self.pop();
                    let reg = self.materialize(loc, SCRATCH0);
                    let dest = self.unary_dest(loc);
                    self.emit(&format!("seqi r{dest}, r{reg}, 0"));
                    self.finish_unary(loc, dest);
                }
                UnOp::AddrOf => {
                    let Expr::Var(name, _) = expr.as_ref() else {
                        unreachable!("checked by sema");
                    };
                    let dest = self.result_reg();
                    self.emit(&format!("li r{dest}, mc_{}", sanitize(name)));
                    self.finish_result(dest);
                }
            },
            Expr::Binary { op, lhs, rhs, .. } => self.eval_binary(*op, lhs, rhs),
            Expr::Call { name, args, .. } => self.gen_call(name, args),
        }
    }

    fn unary_dest(&mut self, loc: Loc) -> u8 {
        match loc {
            Loc::Reg(r) => r,
            _ => self.result_reg(),
        }
    }

    fn finish_unary(&mut self, loc: Loc, dest: u8) {
        match loc {
            Loc::Reg(r) if r == dest => self.push(Loc::Reg(r)),
            other => {
                self.free(other);
                self.finish_result(dest);
            }
        }
    }

    fn eval_binary(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr) {
        if op.is_logical() {
            // Short-circuit in value position: compute 0/1 with branches.
            // Any live temps must be spilled *before* the branching starts:
            // code emitted inside the condition tree (e.g. spills forced by
            // a call in the right operand) may be skipped at run time, so
            // nothing outside the tree may depend on it.
            self.spill_live_temps();
            let false_label = self.fresh_label("valfalse");
            let end_label = self.fresh_label("valend");
            let pos = lhs.pos();
            let full = Expr::Binary {
                op,
                lhs: Box::new(lhs.clone()),
                rhs: Box::new(rhs.clone()),
                pos,
            };
            self.gen_cond_false(&full, &false_label);
            let dest = self.result_reg();
            self.emit(&format!("li r{dest}, 1"));
            self.emit(&format!("j {end_label}"));
            self.label(&false_label);
            self.emit(&format!("li r{dest}, 0"));
            self.label(&end_label);
            self.finish_result(dest);
            return;
        }

        // Immediate forms: `x op const` in one instruction.
        if let Expr::Int(imm, _) = rhs {
            if let Some(mnemonic) = imm_mnemonic(op) {
                self.eval_operand(lhs);
                let loc = self.pop();
                let reg = self.materialize(loc, SCRATCH0);
                let dest = self.unary_dest(loc);
                self.emit(&format!("{mnemonic} r{dest}, r{reg}, {imm}"));
                self.finish_unary(loc, dest);
                return;
            }
        }
        // Commutative with constant lhs: swap.
        if let Expr::Int(imm, _) = lhs {
            if matches!(op, BinOp::Add | BinOp::Mul | BinOp::BitAnd | BinOp::BitOr | BinOp::BitXor)
            {
                if let Some(mnemonic) = imm_mnemonic(op) {
                    self.eval_operand(rhs);
                    let loc = self.pop();
                    let reg = self.materialize(loc, SCRATCH0);
                    let dest = self.unary_dest(loc);
                    self.emit(&format!("{mnemonic} r{dest}, r{reg}, {imm}"));
                    self.finish_unary(loc, dest);
                    return;
                }
            }
        }

        self.eval_operand(lhs);
        self.eval_operand(rhs);
        let rhs_loc = self.pop();
        let lhs_loc = self.pop();
        let rhs_reg = self.materialize(rhs_loc, SCRATCH0);
        let lhs_reg = self.materialize(lhs_loc, SCRATCH1);
        // Reuse an owned temp for the destination when possible.
        let dest = match (lhs_loc, rhs_loc) {
            (Loc::Reg(r), _) => r,
            (_, Loc::Reg(r)) => r,
            _ => self.result_reg(),
        };
        let (mnemonic, swap) = reg_mnemonic(op);
        if swap {
            self.emit(&format!("{mnemonic} r{dest}, r{rhs_reg}, r{lhs_reg}"));
        } else {
            self.emit(&format!("{mnemonic} r{dest}, r{lhs_reg}, r{rhs_reg}"));
        }
        // Free the operand that does not own dest; push dest.
        let mut pushed = false;
        for loc in [lhs_loc, rhs_loc] {
            match loc {
                Loc::Reg(r) if r == dest && !pushed => {
                    self.push(Loc::Reg(r));
                    pushed = true;
                }
                other => self.free(other),
            }
        }
        if !pushed {
            self.finish_result(dest);
        }
    }

    /// Evaluates `expr` directly into callee-saved register `dest` (an
    /// assignment target). Produces the single-instruction
    /// `addi rX, rX, c` form for `i = i + 1`, which the induction analysis
    /// requires.
    fn eval_into(&mut self, expr: &Expr, dest: u8) {
        match expr {
            Expr::Int(v, _) => self.emit(&format!("li r{dest}, {v}")),
            Expr::Var(name, _) => match self.lookup(name) {
                Some(Storage::Reg(r)) => {
                    if r != dest {
                        self.emit(&format!("mv r{dest}, r{r}"));
                    }
                }
                Some(Storage::Frame(off)) => self.emit(&format!("lw r{dest}, {off}(sp)")),
                Some(Storage::FrameArray(off)) => {
                    self.emit(&format!("addi r{dest}, sp, {off}"))
                }
                None => {
                    let addr = self.global_addr(name).expect("checked by sema");
                    if self.is_global_array(name) {
                        self.emit(&format!("li r{dest}, {addr}"));
                    } else {
                        self.emit(&format!("lw r{dest}, {addr}(r0)"));
                    }
                }
            },
            Expr::Binary { op, lhs, rhs, .. } if !op.is_logical() => {
                // `dest = lhs op const` in one instruction when possible.
                if let Expr::Int(imm, _) = rhs.as_ref() {
                    if let Some(mnemonic) = imm_mnemonic(*op) {
                        self.eval_operand(lhs);
                        let loc = self.pop();
                        let reg = self.materialize(loc, SCRATCH0);
                        self.emit(&format!("{mnemonic} r{dest}, r{reg}, {imm}"));
                        self.free(loc);
                        return;
                    }
                }
                self.eval_operand(lhs);
                self.eval_operand(rhs);
                let rhs_loc = self.pop();
                let lhs_loc = self.pop();
                let rhs_reg = self.materialize(rhs_loc, SCRATCH0);
                let lhs_reg = self.materialize(lhs_loc, SCRATCH1);
                let (mnemonic, swap) = reg_mnemonic(*op);
                if swap {
                    self.emit(&format!("{mnemonic} r{dest}, r{rhs_reg}, r{lhs_reg}"));
                } else {
                    self.emit(&format!("{mnemonic} r{dest}, r{lhs_reg}, r{rhs_reg}"));
                }
                self.free(rhs_loc);
                self.free(lhs_loc);
            }
            Expr::Index { base, index, .. } => {
                let (addr_reg, offset, addr_loc) = self.gen_address(base, index);
                self.emit(&format!("lw r{dest}, {offset}(r{addr_reg})"));
                if let Some(loc) = addr_loc {
                    self.free(loc);
                }
            }
            _ => {
                // General case: calls, logicals, unary — evaluate then move.
                self.eval(expr);
                let loc = self.pop();
                let reg = self.materialize(loc, SCRATCH0);
                self.emit(&format!("mv r{dest}, r{reg}"));
                self.free(loc);
            }
        }
    }

    fn gen_call(&mut self, name: &str, args: &[Expr]) {
        // Evaluate arguments left to right onto the eval stack.
        for arg in args {
            self.eval(arg);
        }
        // Temps are caller-save: push every live register entry to the
        // frame (including the argument values just computed).
        self.spill_live_temps();
        // Load arguments into a0..a3 from their (now frame-resident or
        // borrowed) locations. Iterate in reverse so pops line up.
        let mut arg_locs: Vec<Loc> = Vec::with_capacity(args.len());
        for _ in args {
            arg_locs.push(self.pop());
        }
        arg_locs.reverse();
        for (i, loc) in arg_locs.iter().enumerate() {
            match *loc {
                Loc::Spill(slot) => {
                    let off = self.spill_offset(slot);
                    self.emit(&format!("lw a{i}, {off}(sp)"));
                }
                Loc::Borrow(r) => self.emit(&format!("mv a{i}, r{r}")),
                Loc::Zero => self.emit(&format!("li a{i}, 0")),
                Loc::Reg(_) => unreachable!("all temps were spilled"),
            }
        }
        for loc in arg_locs {
            self.free(loc);
        }

        // Direct or indirect?
        if self.module.func(name).is_some() {
            self.emit(&format!("call mc_{}", sanitize(name)));
        } else {
            match self.lookup(name) {
                Some(Storage::Reg(r)) => self.emit(&format!("callr r{r}")),
                Some(Storage::Frame(off)) => {
                    self.emit(&format!("lw r{SCRATCH0}, {off}(sp)"));
                    self.emit(&format!("callr r{SCRATCH0}"));
                }
                Some(Storage::FrameArray(_)) => unreachable!("checked by sema"),
                None => {
                    let addr = self.global_addr(name).expect("checked by sema");
                    self.emit(&format!("lw r{SCRATCH0}, {addr}(r0)"));
                    self.emit(&format!("callr r{SCRATCH0}"));
                }
            }
        }

        // Result.
        let dest = self.result_reg();
        self.emit(&format!("mv r{dest}, v0"));
        self.finish_result(dest);
    }
}

/// Whether an expression can be evaluated unconditionally during
/// if-conversion: no calls (side effects) and no memory accesses (a load
/// hoisted past its guard could fault). Division is safe — the ISA defines
/// division by zero as 0.
fn expr_is_speculation_safe(expr: &Expr) -> bool {
    match expr {
        Expr::Int(..) => true,
        Expr::Var(..) => true, // register or global scalar read
        Expr::Index { .. } | Expr::Call { .. } => false,
        Expr::Unary { op, expr, .. } => !matches!(op, UnOp::AddrOf) && expr_is_speculation_safe(expr),
        Expr::Binary { op, lhs, rhs, .. } => {
            !op.is_logical() && expr_is_speculation_safe(lhs) && expr_is_speculation_safe(rhs)
        }
    }
}

/// Whether a function body contains any call (direct or indirect).
fn body_has_calls(block: &Block) -> bool {
    fn expr_has_calls(expr: &Expr) -> bool {
        match expr {
            Expr::Call { .. } => true,
            Expr::Int(..) | Expr::Var(..) => false,
            Expr::Index { base, index, .. } => expr_has_calls(base) || expr_has_calls(index),
            Expr::Unary { expr, .. } => expr_has_calls(expr),
            Expr::Binary { lhs, rhs, .. } => expr_has_calls(lhs) || expr_has_calls(rhs),
        }
    }
    fn stmt_has_calls(stmt: &Stmt) -> bool {
        match stmt {
            Stmt::VarDecl { init, .. } => init.as_ref().is_some_and(expr_has_calls),
            Stmt::Assign { target, value, .. } => {
                let target_calls = match target {
                    LValue::Var(_) => false,
                    LValue::Index { base, index } => {
                        expr_has_calls(base) || expr_has_calls(index)
                    }
                };
                target_calls || expr_has_calls(value)
            }
            Stmt::Expr(expr) => expr_has_calls(expr),
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                expr_has_calls(cond)
                    || body_has_calls(then_blk)
                    || else_blk.as_ref().is_some_and(body_has_calls)
            }
            Stmt::While { cond, body, .. } => expr_has_calls(cond) || body_has_calls(body),
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                init.as_deref().is_some_and(stmt_has_calls)
                    || cond.as_ref().is_some_and(expr_has_calls)
                    || step.as_deref().is_some_and(stmt_has_calls)
                    || body_has_calls(body)
            }
            Stmt::Return(value, _) => value.as_ref().is_some_and(expr_has_calls),
            Stmt::Block(block) => body_has_calls(block),
            Stmt::Break(_) | Stmt::Continue(_) => false,
        }
    }
    block.stmts.iter().any(stmt_has_calls)
}

/// Collects the array-length of every declaration in body order
/// (`None` = scalar).
fn collect_decls(block: &Block, decls: &mut Vec<Option<u32>>) {
    for stmt in &block.stmts {
        collect_decls_stmt(stmt, decls);
    }
}

fn collect_decls_stmt(stmt: &Stmt, decls: &mut Vec<Option<u32>>) {
    match stmt {
        Stmt::VarDecl { array_len, .. } => decls.push(*array_len),
        Stmt::If {
            then_blk, else_blk, ..
        } => {
            collect_decls(then_blk, decls);
            if let Some(else_blk) = else_blk {
                collect_decls(else_blk, decls);
            }
        }
        Stmt::While { body, .. } => collect_decls(body, decls),
        Stmt::For {
            init, step, body, ..
        } => {
            if let Some(init) = init {
                collect_decls_stmt(init, decls);
            }
            if let Some(step) = step {
                collect_decls_stmt(step, decls);
            }
            collect_decls(body, decls);
        }
        Stmt::Block(block) => collect_decls(block, decls),
        _ => {}
    }
}

fn sanitize(name: &str) -> String {
    name.to_string()
}

impl BinOp {
    /// The comparison with the opposite outcome.
    pub(crate) fn negated(self) -> BinOp {
        match self {
            BinOp::Lt => BinOp::Ge,
            BinOp::Ge => BinOp::Lt,
            BinOp::Le => BinOp::Gt,
            BinOp::Gt => BinOp::Le,
            BinOp::Eq => BinOp::Ne,
            BinOp::Ne => BinOp::Eq,
            other => other,
        }
    }
}

/// Immediate-form mnemonic for `x op const`, if one exists.
fn imm_mnemonic(op: BinOp) -> Option<&'static str> {
    Some(match op {
        BinOp::Add => "addi",
        BinOp::Sub => "subi",
        BinOp::Mul => "muli",
        BinOp::Div => "divi",
        BinOp::Rem => "remi",
        BinOp::Shl => "slli",
        BinOp::Shr => "srai",
        BinOp::BitAnd => "andi",
        BinOp::BitOr => "ori",
        BinOp::BitXor => "xori",
        BinOp::Lt => "slti",
        BinOp::Le => "slei",
        BinOp::Eq => "seqi",
        BinOp::Ne => "snei",
        BinOp::Gt | BinOp::Ge => return None, // need operand swap
        BinOp::LogAnd | BinOp::LogOr => return None,
    })
}

/// Register-form mnemonic and whether operands swap (`a > b` = `b < a`).
fn reg_mnemonic(op: BinOp) -> (&'static str, bool) {
    match op {
        BinOp::Add => ("add", false),
        BinOp::Sub => ("sub", false),
        BinOp::Mul => ("mul", false),
        BinOp::Div => ("div", false),
        BinOp::Rem => ("rem", false),
        BinOp::Shl => ("sll", false),
        BinOp::Shr => ("sra", false),
        BinOp::BitAnd => ("and", false),
        BinOp::BitOr => ("or", false),
        BinOp::BitXor => ("xor", false),
        BinOp::Lt => ("slt", false),
        BinOp::Le => ("sle", false),
        BinOp::Gt => ("slt", true),
        BinOp::Ge => ("sle", true),
        BinOp::Eq => ("seq", false),
        BinOp::Ne => ("sne", false),
        BinOp::LogAnd | BinOp::LogOr => unreachable!("handled before"),
    }
}
