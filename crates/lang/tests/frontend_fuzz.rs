//! Robustness: the MiniC front end must never panic — any input yields
//! either a program or a structured error with a source position.

// Requires the external `proptest` crate: gated off by default so the
// workspace builds and tests fully offline. Enable with
// `--features external-tests` after restoring the proptest dev-dependency.
#![cfg(feature = "external-tests")]

use clfp_lang::{check, compile, parse, Lexer};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    #[test]
    fn lexer_never_panics(source in "\\PC{0,200}") {
        let _ = Lexer::tokenize(&source);
    }

    #[test]
    fn parser_never_panics(source in "\\PC{0,200}") {
        let _ = parse(&source);
    }

    /// Token-soup inputs built from MiniC's own vocabulary: the whole
    /// pipeline either compiles them or reports an error; it never panics.
    #[test]
    fn pipeline_never_panics_on_token_soup(
        tokens in prop::collection::vec(
            prop::sample::select(vec![
                "fn", "var", "int", "if", "else", "while", "for", "return",
                "break", "continue", "main", "x", "y", "(", ")", "{", "}",
                "[", "]", ":", ";", ",", "=", "+", "-", "*", "/", "%", "<",
                ">", "==", "!=", "&&", "||", "&", "!", "->", "0", "1", "42",
                "'a'", "0xFF",
            ]),
            0..50,
        )
    ) {
        let source = tokens.join(" ");
        match parse(&source) {
            Ok(module) => {
                if check(&module).is_ok() {
                    // Anything semantically valid must make it through
                    // codegen and the assembler.
                    let result = compile(&source);
                    prop_assert!(result.is_ok(), "codegen failed on valid program:\n{source}");
                }
            }
            Err(err) => {
                prop_assert!(err.line() <= source.lines().count() + 1);
            }
        }
    }
}
