//! Tests for if-conversion to guarded moves (the paper's Section 6
//! "guarded instructions").

use clfp_isa::{Instr, Reg};
use clfp_lang::{compile, compile_with_options, CodegenOptions};
use clfp_vm::{Vm, VmOptions};

const OPTIONS: CodegenOptions = CodegenOptions {
    if_conversion: true,
    optimize: false,
};

fn run(program: &clfp_isa::Program) -> (i32, u64, u64) {
    let mut vm = Vm::new(program, VmOptions { mem_words: 1 << 20 });
    let trace = vm.trace(50_000_000).unwrap();
    assert!(vm.halted());
    let summary = trace.summarize(program);
    (vm.reg(Reg::V0), summary.total, summary.cond_branches)
}

/// Both compilations must produce the same result; the converted one must
/// execute fewer conditional branches.
fn check(source: &str) -> (u64, u64) {
    let plain = compile(source).unwrap();
    let converted = compile_with_options(source, OPTIONS).unwrap();
    let (r1, _, b1) = run(&plain);
    let (r2, _, b2) = run(&converted);
    assert_eq!(r1, r2, "if-conversion changed the result of:\n{source}");
    (b1, b2)
}

#[test]
fn converts_guarded_assignment() {
    let source = r#"
        fn main() -> int {
            var peak: int = 0;
            for (var i: int = 0; i < 100; i = i + 1) {
                var v: int = (i * 37 + 11) % 64;
                if (v > peak) { peak = v; }
            }
            return peak;
        }
    "#;
    let (before, after) = check(source);
    assert!(
        after < before,
        "expected fewer branches: {before} -> {after}"
    );
    // The converted binary contains cmovn.
    let converted = compile_with_options(source, OPTIONS).unwrap();
    assert!(converted
        .text
        .iter()
        .any(|i| matches!(i, Instr::CMovN { .. })));
}

#[test]
fn converts_if_else_diamond() {
    let source = r#"
        fn main() -> int {
            var acc: int = 0;
            for (var i: int = 0; i < 64; i = i + 1) {
                var x: int = 0;
                if (i % 3 == 0) { x = i * 2; } else { x = 7 - i; }
                acc = acc + x;
            }
            return acc;
        }
    "#;
    let (before, after) = check(source);
    assert!(after < before);
    let converted = compile_with_options(source, OPTIONS).unwrap();
    assert!(converted.text.iter().any(|i| matches!(i, Instr::CMovZ { .. })));
}

#[test]
fn does_not_convert_calls_or_loads() {
    // Arms with calls or memory reads must keep their branches.
    let source = r#"
        var table: int[8] = {1,2,3,4,5,6,7,8};
        fn f(x: int) -> int { return x + 1; }
        fn main() -> int {
            var a: int = 0;
            var b: int = 0;
            if (a == 0) { b = f(3); }
            if (b > 0) { a = table[2]; }
            return a * 100 + b;
        }
    "#;
    let converted = compile_with_options(source, OPTIONS).unwrap();
    assert!(
        !converted
            .text
            .iter()
            .any(|i| matches!(i, Instr::CMovN { .. } | Instr::CMovZ { .. })),
        "unsafe arms must not be converted"
    );
    check(source);
}

#[test]
fn does_not_convert_multi_statement_arms() {
    let source = r#"
        fn main() -> int {
            var a: int = 0;
            var b: int = 0;
            if (a == 0) { a = 1; b = 2; }
            return a + b;
        }
    "#;
    let converted = compile_with_options(source, OPTIONS).unwrap();
    assert!(!converted
        .text
        .iter()
        .any(|i| matches!(i, Instr::CMovN { .. })));
    check(source);
}

#[test]
fn guarded_semantics_with_self_reference() {
    // x = x + 1 under a guard: the cmov reads the old x.
    let source = r#"
        fn main() -> int {
            var hits: int = 0;
            for (var i: int = 0; i < 50; i = i + 1) {
                if (i % 7 == 0) { hits = hits + 1; }
            }
            return hits;
        }
    "#;
    check(source);
}

#[test]
fn complex_guard_expressions() {
    let source = r#"
        var gate: int = 3;
        fn main() -> int {
            var s: int = 0;
            for (var i: int = 0; i < 40; i = i + 1) {
                if ((i ^ gate) % 5 < 2) { s = s + i * i - gate; }
            }
            return s;
        }
    "#;
    let (before, after) = check(source);
    assert!(after < before);
}

#[test]
fn nested_converted_ifs() {
    let source = r#"
        fn main() -> int {
            var lo: int = 1000;
            var hi: int = 0;
            for (var i: int = 0; i < 200; i = i + 1) {
                var v: int = (i * 61 + 17) % 97;
                if (v < lo) { lo = v; }
                if (v > hi) { hi = v; }
            }
            return hi * 1000 + lo;
        }
    "#;
    let (before, after) = check(source);
    assert!(after < before);
}
