//! End-to-end tests: compile MiniC, execute on the VM, and check both the
//! result and (where used) the final global values — differentially against
//! the reference AST interpreter.

use clfp_isa::{Reg, DATA_BASE};
use clfp_lang::{compile, compile_with_listing, interpret_source};
use clfp_vm::{Vm, VmOptions};

fn run_compiled(source: &str) -> (i32, Vm<'static>) {
    let program = Box::leak(Box::new(compile(source).unwrap_or_else(|err| {
        panic!("compile failed: {err}\nsource:\n{source}")
    })));
    let mut vm = Vm::new(program, VmOptions { mem_words: 1 << 20 });
    vm.run(50_000_000)
        .unwrap_or_else(|err| panic!("vm failed: {err}\n{}", program.disassemble()));
    assert!(vm.halted(), "program did not halt");
    let result = vm.reg(Reg::V0);
    (result, vm)
}

/// Compiled result must equal the interpreter's result.
fn differential(source: &str) -> i32 {
    let expected = interpret_source(source, 100_000_000)
        .unwrap_or_else(|err| panic!("interp failed: {err}"));
    let (result, vm) = run_compiled(source);
    assert_eq!(
        result, expected.result,
        "compiled vs interpreted result mismatch"
    );
    // Compare final global memory too.
    for (i, &value) in expected.globals.iter().enumerate() {
        let addr = DATA_BASE + (i as u32) * 4;
        assert_eq!(
            vm.load_word(addr).unwrap(),
            value,
            "global word {i} mismatch"
        );
    }
    result
}

#[test]
fn constant_return() {
    assert_eq!(differential("fn main() -> int { return 42; }"), 42);
}

#[test]
fn arithmetic_precedence() {
    assert_eq!(
        differential("fn main() -> int { return 2 + 3 * 4 - 6 / 2; }"),
        11
    );
}

#[test]
fn division_semantics() {
    assert_eq!(differential("fn main() -> int { return -7 / 2; }"), -3);
    assert_eq!(differential("fn main() -> int { return -7 % 2; }"), -1);
    assert_eq!(differential("fn main() -> int { return 5 / 0; }"), 0);
}

#[test]
fn shifts_and_bitops() {
    assert_eq!(
        differential("fn main() -> int { return (1 << 10) | (255 & 15) ^ 1; }"),
        1024 | (15 ^ 1)
    );
    assert_eq!(differential("fn main() -> int { return -16 >> 2; }"), -4);
}

#[test]
fn comparisons_as_values() {
    assert_eq!(
        differential(
            "fn main() -> int { return (1 < 2) + (2 <= 2) + (3 > 4) + (4 >= 5) + (5 == 5) + (6 != 6); }"
        ),
        3
    );
}

#[test]
fn locals_in_registers() {
    let source = r#"
        fn main() -> int {
            var a: int = 3;
            var b: int = 4;
            var c: int = a * a + b * b;
            return c;
        }
    "#;
    assert_eq!(differential(source), 25);
}

#[test]
fn for_loop_sum() {
    let source = r#"
        fn main() -> int {
            var s: int = 0;
            for (var i: int = 1; i <= 100; i = i + 1) { s = s + i; }
            return s;
        }
    "#;
    assert_eq!(differential(source), 5050);
}

#[test]
fn while_loop_collatz() {
    let source = r#"
        fn main() -> int {
            var n: int = 27;
            var steps: int = 0;
            while (n != 1) {
                if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
                steps = steps + 1;
            }
            return steps;
        }
    "#;
    assert_eq!(differential(source), 111);
}

#[test]
fn nested_loops() {
    let source = r#"
        fn main() -> int {
            var count: int = 0;
            for (var i: int = 0; i < 10; i = i + 1) {
                for (var j: int = 0; j < 10; j = j + 1) {
                    if (i * j % 7 == 0) { count = count + 1; }
                }
            }
            return count;
        }
    "#;
    differential(source);
}

#[test]
fn break_continue() {
    let source = r#"
        fn main() -> int {
            var s: int = 0;
            for (var i: int = 0; i < 1000; i = i + 1) {
                if (i > 20) { break; }
                if (i % 3 != 0) { continue; }
                s = s + i;
            }
            return s;
        }
    "#;
    assert_eq!(differential(source), 3 + 6 + 9 + 12 + 15 + 18);
}

#[test]
fn global_scalars() {
    let source = r#"
        var counter: int = 10;
        fn bump() -> int { counter = counter + 5; return counter; }
        fn main() -> int { bump(); bump(); return counter; }
    "#;
    assert_eq!(differential(source), 20);
}

#[test]
fn global_arrays() {
    let source = r#"
        var data: int[8] = {8, 7, 6, 5, 4, 3, 2, 1};
        var out: int[8];
        fn main() -> int {
            for (var i: int = 0; i < 8; i = i + 1) { out[i] = data[7 - i]; }
            var check: int = 0;
            for (var i: int = 0; i < 8; i = i + 1) { check = check * 10 + out[i]; }
            return check;
        }
    "#;
    assert_eq!(differential(source), 12345678);
}

#[test]
fn local_arrays() {
    let source = r#"
        fn main() -> int {
            var buf: int[10];
            for (var i: int = 0; i < 10; i = i + 1) { buf[i] = i * i; }
            var s: int = 0;
            for (var i: int = 0; i < 10; i = i + 1) { s = s + buf[i]; }
            return s;
        }
    "#;
    assert_eq!(differential(source), 285);
}

#[test]
fn functions_and_args() {
    let source = r#"
        fn max4(a: int, b: int, c: int, d: int) -> int {
            var m: int = a;
            if (b > m) { m = b; }
            if (c > m) { m = c; }
            if (d > m) { m = d; }
            return m;
        }
        fn main() -> int { return max4(3, 9, 2, 7); }
    "#;
    assert_eq!(differential(source), 9);
}

#[test]
fn recursion_factorial() {
    let source = r#"
        fn fact(n: int) -> int {
            if (n <= 1) { return 1; }
            return n * fact(n - 1);
        }
        fn main() -> int { return fact(10); }
    "#;
    assert_eq!(differential(source), 3628800);
}

#[test]
fn mutual_recursion() {
    let source = r#"
        fn is_even(n: int) -> int { if (n == 0) { return 1; } return is_odd(n - 1); }
        fn is_odd(n: int) -> int { if (n == 0) { return 0; } return is_even(n - 1); }
        fn main() -> int { return is_even(10) * 10 + is_odd(7); }
    "#;
    assert_eq!(differential(source), 11);
}

#[test]
fn deep_recursion_uses_stack() {
    let source = r#"
        fn depth(n: int) -> int {
            if (n == 0) { return 0; }
            return 1 + depth(n - 1);
        }
        fn main() -> int { return depth(2000); }
    "#;
    assert_eq!(differential(source), 2000);
}

#[test]
fn short_circuit_semantics() {
    let source = r#"
        var calls: int = 0;
        fn touch(v: int) -> int { calls = calls + 1; return v; }
        fn main() -> int {
            var a: int = 0 != 0 && touch(1) != 0;
            var b: int = 1 == 1 || touch(1) != 0;
            return calls * 10 + a + b;
        }
    "#;
    // Neither operand function should run.
    assert_eq!(differential(source), 1);
}

#[test]
fn logical_values() {
    let source = r#"
        fn main() -> int {
            var x: int = 5;
            var y: int = 0;
            return (x && y) * 100 + (x || y) * 10 + (!x) + (!y) * 2;
        }
    "#;
    assert_eq!(differential(source), 12);
}

#[test]
fn indirect_calls() {
    let source = r#"
        fn inc(x: int) -> int { return x + 1; }
        fn dec(x: int) -> int { return x - 1; }
        var ops: int[2];
        fn main() -> int {
            ops[0] = &inc;
            ops[1] = &dec;
            var v: int = 100;
            for (var i: int = 0; i < 10; i = i + 1) {
                var f: int = ops[i % 2];
                v = f(v);
            }
            return v;
        }
    "#;
    let (result, _) = run_compiled(source);
    assert_eq!(result, 100); // 5 incs + 5 decs
}

#[test]
fn pointer_arithmetic_lists() {
    let source = r#"
        var arena: int[64];
        fn main() -> int {
            var hp: int = arena;
            var head: int = 0;
            for (var i: int = 1; i <= 5; i = i + 1) {
                hp[0] = i * i;
                hp[1] = head;
                head = hp;
                hp = hp + 8;
            }
            var s: int = 0;
            while (head != 0) {
                s = s + head[0];
                head = head[1];
            }
            return s;
        }
    "#;
    assert_eq!(differential(source), 1 + 4 + 9 + 16 + 25);
}

#[test]
fn array_passed_to_function() {
    let source = r#"
        fn fill(p: int, n: int, seed: int) -> int {
            for (var i: int = 0; i < n; i = i + 1) {
                p[i] = seed;
                seed = seed * 1103515245 + 12345;
                seed = seed % 1000;
            }
            return 0;
        }
        fn sum(p: int, n: int) -> int {
            var s: int = 0;
            for (var i: int = 0; i < n; i = i + 1) { s = s + p[i]; }
            return s;
        }
        fn main() -> int {
            var local: int[16];
            fill(local, 16, 7);
            return sum(local, 16);
        }
    "#;
    differential(source);
}

#[test]
fn many_locals_spill_to_frame() {
    // 20 scalars exceed the 14 allocatable registers; the rest go to the
    // frame and the program must still be correct.
    let mut body = String::new();
    for i in 0..20 {
        body.push_str(&format!("var v{i}: int = {i};\n"));
    }
    body.push_str("var s: int = 0;\n");
    for i in 0..20 {
        body.push_str(&format!("s = s + v{i};\n"));
    }
    let source = format!("fn main() -> int {{ {body} return s; }}");
    assert_eq!(differential(&source), (0..20).sum::<i32>());
}

#[test]
fn deep_expression_spills_eval_stack() {
    // A right-leaning expression tree deeper than the 4 temp registers.
    let expr = "1 + (2 + (3 + (4 + (5 + (6 + (7 + (8 + (9 + (10 + (11 + 12))))))))))";
    let source = format!("fn main() -> int {{ return {expr}; }}");
    assert_eq!(differential(&source), 78);
}

#[test]
fn call_inside_expression() {
    let source = r#"
        fn sq(x: int) -> int { return x * x; }
        fn main() -> int {
            var a: int = 2;
            return a + sq(a + 1) * sq(2) - sq(sq(a));
        }
    "#;
    assert_eq!(differential(source), 2 + 9 * 4 - 16);
}

#[test]
fn shadowing() {
    let source = r#"
        fn main() -> int {
            var x: int = 1;
            {
                var x: int = 2;
                x = x + 10;
            }
            return x;
        }
    "#;
    assert_eq!(differential(source), 1);
}

#[test]
fn else_if_chains() {
    let source = r#"
        fn classify(x: int) -> int {
            if (x < 0) { return 0 - 1; }
            else if (x == 0) { return 0; }
            else if (x < 10) { return 1; }
            else { return 2; }
        }
        fn main() -> int {
            return classify(-5) + classify(0) * 10 + classify(5) * 100 + classify(50) * 1000;
        }
    "#;
    assert_eq!(differential(source), -1 + 100 + 2000);
}

#[test]
fn listing_contains_expected_shape() {
    let source = r#"
        fn main() -> int {
            var s: int = 0;
            for (var i: int = 0; i < 10; i = i + 1) { s = s + i; }
            return s;
        }
    "#;
    let (_, listing) = compile_with_listing(source).unwrap();
    // The loop increment must be the fused single-instruction
    // `addi rX, rX, 1` form the induction analysis recognizes.
    let has_fused_increment = listing.lines().any(|line| {
        let line = line.trim();
        let Some(rest) = line.strip_prefix("addi ") else {
            return false;
        };
        let ops: Vec<&str> = rest.split(", ").collect();
        ops.len() == 3 && ops[0] == ops[1] && ops[2] == "1"
    });
    assert!(has_fused_increment, "missing fused increment in:\n{listing}");
    // Frames are allocated by sp arithmetic.
    assert!(listing.contains("addi sp, sp, -"));
    // The loop condition is a fused compare-and-branch on registers.
    assert!(listing.contains("bge "), "listing:\n{listing}");
}

#[test]
fn empty_function_returns_zero() {
    assert_eq!(differential("fn noop() -> int { } fn main() -> int { return noop() + 7; }"), 7);
}

#[test]
fn return_without_value() {
    assert_eq!(
        differential("fn f() -> int { return; } fn main() -> int { return f() + 3; }"),
        3
    );
}

#[test]
fn unary_operators() {
    assert_eq!(differential("fn main() -> int { var x: int = 5; return -x + !x + !!x; }"), -4);
}

#[test]
fn complex_conditions() {
    let source = r#"
        fn main() -> int {
            var hits: int = 0;
            for (var i: int = 0; i < 30; i = i + 1) {
                if ((i % 2 == 0 && i % 3 == 0) || i > 25 || !(i < 28)) {
                    hits = hits + 1;
                }
            }
            return hits;
        }
    "#;
    differential(source);
}

#[test]
fn sorting_program() {
    let source = r#"
        var data: int[16] = {13, 2, 9, 4, 15, 6, 1, 8, 3, 10, 11, 12, 5, 14, 7, 16};
        fn main() -> int {
            // Insertion sort.
            for (var i: int = 1; i < 16; i = i + 1) {
                var key: int = data[i];
                var j: int = i - 1;
                while (j >= 0 && data[j] > key) {
                    data[j + 1] = data[j];
                    j = j - 1;
                }
                data[j + 1] = key;
            }
            var ok: int = 1;
            for (var i: int = 0; i < 16; i = i + 1) {
                if (data[i] != i + 1) { ok = 0; }
            }
            return ok;
        }
    "#;
    assert_eq!(differential(source), 1);
}
